//! Instruction-set architecture of the Sweeper VM.
//!
//! A deliberately small, fixed-width (8-byte) RISC-like ISA. Fixed width
//! keeps encode/decode trivial, which matters because exploit payloads are
//! *real encoded instructions* smuggled inside request bytes — the stack
//! smashing exploit genuinely redirects control into attacker-supplied
//! shellcode, just as the 2003-era CVEs the paper evaluates did.

use crate::error::{Fault, SvmError};

/// Number of general-purpose registers (r0..r12, fp, sp).
pub const NUM_REGS: usize = 15;

/// Size in bytes of one encoded instruction.
pub const INSN_SIZE: u32 = 8;

/// A register name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// The frame-pointer register (`fp`, alias r13).
    pub const FP: Reg = Reg(13);
    /// The stack-pointer register (`sp`, alias r14).
    pub const SP: Reg = Reg(14);
    /// First argument / return-value register.
    pub const R0: Reg = Reg(0);
    /// Second argument register.
    pub const R1: Reg = Reg(1);
    /// Third argument register.
    pub const R2: Reg = Reg(2);
    /// Fourth argument register.
    pub const R3: Reg = Reg(3);

    /// Parse a register name (`r0`..`r12`, `fp`, `sp`).
    pub fn parse(s: &str) -> Option<Reg> {
        match s {
            "fp" => Some(Reg::FP),
            "sp" => Some(Reg::SP),
            _ => {
                let n: u8 = s.strip_prefix('r')?.parse().ok()?;
                if (n as usize) < NUM_REGS - 2 {
                    Some(Reg(n))
                } else {
                    None
                }
            }
        }
    }

    /// Index into the register file.
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl core::fmt::Display for Reg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            Reg::FP => write!(f, "fp"),
            Reg::SP => write!(f, "sp"),
            Reg(n) => write!(f, "r{n}"),
        }
    }
}

/// Branch/set condition derived from the flags register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal / zero.
    Eq,
    /// Not equal / non-zero.
    Ne,
    /// Unsigned less-than.
    Lt,
    /// Unsigned less-or-equal.
    Le,
    /// Unsigned greater-than.
    Gt,
    /// Unsigned greater-or-equal.
    Ge,
}

/// Arithmetic/logic operation selector for [`Op::Alu`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (faults on zero divisor).
    Div,
    /// Unsigned remainder (faults on zero divisor).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (modulo 32).
    Shl,
    /// Logical shift right (modulo 32).
    Shr,
}

impl AluOp {
    /// Evaluate the operation on two unsigned operands.
    ///
    /// `pc` is used only to populate the [`Fault::DivByZero`] payload.
    /// Both execution tiers (the interpreter in `machine` and the
    /// superblock compiler in `superblock`) call this single definition,
    /// so ALU semantics cannot drift between them.
    pub fn eval(self, a: u32, b: u32, pc: u32) -> Result<u32, Fault> {
        Ok(match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    return Err(Fault::DivByZero { pc });
                }
                a / b
            }
            AluOp::Rem => {
                if b == 0 {
                    return Err(Fault::DivByZero { pc });
                }
                a % b
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl(b),
            AluOp::Shr => a.wrapping_shr(b),
        })
    }
}

/// A decoded instruction.
///
/// Field meanings are given in each variant's doc line; `rd`/`rs*` are
/// destination/source registers, `imm`/`off`/`target` immediates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Op {
    /// No operation.
    Nop,
    /// Stop the machine with exit code from `r0`.
    Halt,
    /// `rd <- imm`.
    MovI { rd: Reg, imm: u32 },
    /// `rd <- rs`.
    Mov { rd: Reg, rs: Reg },
    /// `rd <- mem32[rs + imm]`.
    Ld { rd: Reg, rs: Reg, off: i32 },
    /// `mem32[rd + imm] <- rs`.
    St { rd: Reg, rs: Reg, off: i32 },
    /// `rd <- zext(mem8[rs + imm])`.
    LdB { rd: Reg, rs: Reg, off: i32 },
    /// `mem8[rd + imm] <- rs & 0xff`.
    StB { rd: Reg, rs: Reg, off: i32 },
    /// Three-register ALU operation: `rd <- rs1 op rs2`.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Immediate ALU operation: `rd <- rs1 op imm`.
    AluI {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Compare two registers, setting flags.
    Cmp { rs1: Reg, rs2: Reg },
    /// Compare register with immediate, setting flags.
    CmpI { rs1: Reg, imm: u32 },
    /// Unconditional absolute jump.
    Jmp { target: u32 },
    /// Conditional absolute jump.
    JCond { cond: Cond, target: u32 },
    /// Indirect jump through a register.
    JmpR { rs: Reg },
    /// Call: push return address, jump to absolute target.
    Call { target: u32 },
    /// Indirect call through a register (classic hijack vector).
    CallR { rs: Reg },
    /// Return: pop return address, jump to it.
    Ret,
    /// Push a register onto the stack.
    Push { rs: Reg },
    /// Pop the stack into a register.
    Pop { rd: Reg },
    /// Invoke host syscall `num` (args in r0..r3, result in r0).
    Sys { num: u8 },
}

const OP_NOP: u8 = 0x00;
const OP_HALT: u8 = 0x01;
const OP_MOVI: u8 = 0x02;
const OP_MOV: u8 = 0x03;
const OP_LD: u8 = 0x04;
const OP_ST: u8 = 0x05;
const OP_LDB: u8 = 0x06;
const OP_STB: u8 = 0x07;
const OP_ALU: u8 = 0x08; // rs2 in byte 3
const OP_ALUI: u8 = 0x09; // imm in word
const OP_CMP: u8 = 0x0a;
const OP_CMPI: u8 = 0x0b;
const OP_JMP: u8 = 0x0c;
const OP_JCOND: u8 = 0x0d; // cond in byte 1
const OP_JMPR: u8 = 0x0e;
const OP_CALL: u8 = 0x0f;
const OP_CALLR: u8 = 0x10;
const OP_RET: u8 = 0x11;
const OP_PUSH: u8 = 0x12;
const OP_POP: u8 = 0x13;
const OP_SYS: u8 = 0x14;

fn alu_code(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::Mul => 2,
        AluOp::Div => 3,
        AluOp::Rem => 4,
        AluOp::And => 5,
        AluOp::Or => 6,
        AluOp::Xor => 7,
        AluOp::Shl => 8,
        AluOp::Shr => 9,
    }
}

fn alu_from(code: u8) -> Option<AluOp> {
    Some(match code {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::Mul,
        3 => AluOp::Div,
        4 => AluOp::Rem,
        5 => AluOp::And,
        6 => AluOp::Or,
        7 => AluOp::Xor,
        8 => AluOp::Shl,
        9 => AluOp::Shr,
        _ => return None,
    })
}

fn cond_code(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Le => 3,
        Cond::Gt => 4,
        Cond::Ge => 5,
    }
}

fn cond_from(code: u8) -> Option<Cond> {
    Some(match code {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Le,
        4 => Cond::Gt,
        5 => Cond::Ge,
        _ => return None,
    })
}

impl Op {
    /// Encode this instruction into its fixed 8-byte representation.
    ///
    /// Layout: `[opcode, a, b, c, imm0, imm1, imm2, imm3]` (imm little-endian).
    pub fn encode(&self) -> [u8; 8] {
        let mut w = [0u8; 8];
        let (opc, a, b, c, imm): (u8, u8, u8, u8, u32) = match *self {
            Op::Nop => (OP_NOP, 0, 0, 0, 0),
            Op::Halt => (OP_HALT, 0, 0, 0, 0),
            Op::MovI { rd, imm } => (OP_MOVI, rd.0, 0, 0, imm),
            Op::Mov { rd, rs } => (OP_MOV, rd.0, rs.0, 0, 0),
            Op::Ld { rd, rs, off } => (OP_LD, rd.0, rs.0, 0, off as u32),
            Op::St { rd, rs, off } => (OP_ST, rd.0, rs.0, 0, off as u32),
            Op::LdB { rd, rs, off } => (OP_LDB, rd.0, rs.0, 0, off as u32),
            Op::StB { rd, rs, off } => (OP_STB, rd.0, rs.0, 0, off as u32),
            Op::Alu { op, rd, rs1, rs2 } => (OP_ALU, rd.0, rs1.0, (alu_code(op) << 4) | rs2.0, 0),
            Op::AluI { op, rd, rs1, imm } => (OP_ALUI, rd.0, rs1.0, alu_code(op), imm as u32),
            Op::Cmp { rs1, rs2 } => (OP_CMP, rs1.0, rs2.0, 0, 0),
            Op::CmpI { rs1, imm } => (OP_CMPI, rs1.0, 0, 0, imm),
            Op::Jmp { target } => (OP_JMP, 0, 0, 0, target),
            Op::JCond { cond, target } => (OP_JCOND, cond_code(cond), 0, 0, target),
            Op::JmpR { rs } => (OP_JMPR, rs.0, 0, 0, 0),
            Op::Call { target } => (OP_CALL, 0, 0, 0, target),
            Op::CallR { rs } => (OP_CALLR, rs.0, 0, 0, 0),
            Op::Ret => (OP_RET, 0, 0, 0, 0),
            Op::Push { rs } => (OP_PUSH, rs.0, 0, 0, 0),
            Op::Pop { rd } => (OP_POP, rd.0, 0, 0, 0),
            Op::Sys { num } => (OP_SYS, num, 0, 0, 0),
        };
        w[0] = opc;
        w[1] = a;
        w[2] = b;
        w[3] = c;
        w[4..8].copy_from_slice(&imm.to_le_bytes());
        w
    }

    /// Decode an instruction from its 8-byte representation.
    ///
    /// `pc` is used only to populate the [`Fault::BadOpcode`] error.
    pub fn decode(w: [u8; 8], pc: u32) -> Result<Op, Fault> {
        Op::decode_word(w).ok_or(Fault::BadOpcode { pc, opcode: w[0] })
    }

    /// Decode an instruction word without a program counter.
    ///
    /// This is the pure core of [`Op::decode`]: the result depends only
    /// on the bytes, never on where they are executed from, which is
    /// what makes predecoded per-page instruction caches sound —
    /// identical bytes decode to the identical [`Op`] at any pc, and an
    /// undecodable word (`None`) faults identically at every fetch site
    /// (the fault's `pc` is supplied by the caller of [`Op::decode`]).
    pub fn decode_word(w: [u8; 8]) -> Option<Op> {
        let reg = |b: u8| -> Option<Reg> {
            if (b as usize) < NUM_REGS {
                Some(Reg(b))
            } else {
                None
            }
        };
        let imm = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
        Some(match w[0] {
            OP_NOP => Op::Nop,
            OP_HALT => Op::Halt,
            OP_MOVI => Op::MovI {
                rd: reg(w[1])?,
                imm,
            },
            OP_MOV => Op::Mov {
                rd: reg(w[1])?,
                rs: reg(w[2])?,
            },
            OP_LD => Op::Ld {
                rd: reg(w[1])?,
                rs: reg(w[2])?,
                off: imm as i32,
            },
            OP_ST => Op::St {
                rd: reg(w[1])?,
                rs: reg(w[2])?,
                off: imm as i32,
            },
            OP_LDB => Op::LdB {
                rd: reg(w[1])?,
                rs: reg(w[2])?,
                off: imm as i32,
            },
            OP_STB => Op::StB {
                rd: reg(w[1])?,
                rs: reg(w[2])?,
                off: imm as i32,
            },
            OP_ALU => Op::Alu {
                op: alu_from(w[3] >> 4)?,
                rd: reg(w[1])?,
                rs1: reg(w[2])?,
                rs2: reg(w[3] & 0x0f)?,
            },
            OP_ALUI => Op::AluI {
                op: alu_from(w[3])?,
                rd: reg(w[1])?,
                rs1: reg(w[2])?,
                imm: imm as i32,
            },
            OP_CMP => Op::Cmp {
                rs1: reg(w[1])?,
                rs2: reg(w[2])?,
            },
            OP_CMPI => Op::CmpI {
                rs1: reg(w[1])?,
                imm,
            },
            OP_JMP => Op::Jmp { target: imm },
            OP_JCOND => Op::JCond {
                cond: cond_from(w[1])?,
                target: imm,
            },
            OP_JMPR => Op::JmpR { rs: reg(w[1])? },
            OP_CALL => Op::Call { target: imm },
            OP_CALLR => Op::CallR { rs: reg(w[1])? },
            OP_RET => Op::Ret,
            OP_PUSH => Op::Push { rs: reg(w[1])? },
            OP_POP => Op::Pop { rd: reg(w[1])? },
            OP_SYS => Op::Sys { num: w[1] },
            _ => return None,
        })
    }

    /// Whether this instruction can write memory (used by red-zone tools).
    pub fn is_store(&self) -> bool {
        matches!(
            self,
            Op::St { .. } | Op::StB { .. } | Op::Push { .. } | Op::Call { .. } | Op::CallR { .. }
        )
    }

    /// Whether this instruction transfers control indirectly (hijack sink).
    pub fn is_indirect_branch(&self) -> bool {
        matches!(self, Op::JmpR { .. } | Op::CallR { .. } | Op::Ret)
    }
}

/// Syscall numbers understood by the VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Syscall {
    /// Terminate the process; `r0` = exit code.
    Exit,
    /// Accept a pending connection; returns connection id or -1.
    Accept,
    /// `read(conn, buf, len)` -> bytes read (0 = EOF, -1 = error).
    Read,
    /// `write(conn, buf, len)` -> bytes written.
    Write,
    /// Close a connection.
    Close,
    /// `alloc(size)` -> pointer (0 on OOM).
    Alloc,
    /// `free(ptr)`.
    Free,
    /// Current virtual time in microseconds.
    Time,
    /// Pseudo-random 32-bit value from the (checkpointed) guest RNG.
    Rand,
    /// Debug log: `log(buf, len)` (captured by the host).
    Log,
}

impl Syscall {
    /// Numeric syscall code.
    pub fn num(self) -> u8 {
        match self {
            Syscall::Exit => 0,
            Syscall::Accept => 1,
            Syscall::Read => 2,
            Syscall::Write => 3,
            Syscall::Close => 4,
            Syscall::Alloc => 5,
            Syscall::Free => 6,
            Syscall::Time => 7,
            Syscall::Rand => 8,
            Syscall::Log => 9,
        }
    }

    /// Decode a syscall number.
    pub fn from_num(n: u8) -> Option<Syscall> {
        Some(match n {
            0 => Syscall::Exit,
            1 => Syscall::Accept,
            2 => Syscall::Read,
            3 => Syscall::Write,
            4 => Syscall::Close,
            5 => Syscall::Alloc,
            6 => Syscall::Free,
            7 => Syscall::Time,
            8 => Syscall::Rand,
            9 => Syscall::Log,
            _ => return None,
        })
    }

    /// Parse the assembler mnemonic used after `sys` (e.g. `sys read`).
    pub fn parse(s: &str) -> Option<Syscall> {
        Some(match s {
            "exit" => Syscall::Exit,
            "accept" => Syscall::Accept,
            "read" => Syscall::Read,
            "write" => Syscall::Write,
            "close" => Syscall::Close,
            "alloc" => Syscall::Alloc,
            "free" => Syscall::Free,
            "time" => Syscall::Time,
            "rand" => Syscall::Rand,
            "log" => Syscall::Log,
            _ => return None,
        })
    }
}

/// Validate that a register byte parsed from text is usable, for assembler use.
pub fn reg_or_err(s: &str, line: usize) -> Result<Reg, SvmError> {
    Reg::parse(s).ok_or_else(|| SvmError::Asm {
        line,
        msg: format!("bad register `{s}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(op: Op) {
        let enc = op.encode();
        let dec = Op::decode(enc, 0).expect("decode");
        assert_eq!(op, dec, "roundtrip failed for {op:?}");
    }

    #[test]
    fn encode_decode_roundtrip_all_forms() {
        let r = |n| Reg(n);
        for op in [
            Op::Nop,
            Op::Halt,
            Op::MovI {
                rd: r(3),
                imm: 0xdead_beef,
            },
            Op::Mov { rd: r(1), rs: r(2) },
            Op::Ld {
                rd: r(4),
                rs: Reg::FP,
                off: -8,
            },
            Op::St {
                rd: Reg::SP,
                rs: r(0),
                off: 12,
            },
            Op::LdB {
                rd: r(5),
                rs: r(6),
                off: 255,
            },
            Op::StB {
                rd: r(7),
                rs: r(8),
                off: -1,
            },
            Op::Alu {
                op: AluOp::Add,
                rd: r(1),
                rs1: r(2),
                rs2: r(3),
            },
            Op::Alu {
                op: AluOp::Shr,
                rd: r(9),
                rs1: r(10),
                rs2: r(11),
            },
            Op::AluI {
                op: AluOp::Sub,
                rd: r(1),
                rs1: r(1),
                imm: -4,
            },
            Op::Cmp {
                rs1: r(0),
                rs2: r(1),
            },
            Op::CmpI { rs1: r(2), imm: 77 },
            Op::Jmp { target: 0x1000 },
            Op::JCond {
                cond: Cond::Le,
                target: 0x2000,
            },
            Op::JmpR { rs: r(6) },
            Op::Call { target: 0x3000 },
            Op::CallR { rs: r(9) },
            Op::Ret,
            Op::Push { rs: r(12) },
            Op::Pop { rd: r(0) },
            Op::Sys {
                num: Syscall::Read.num(),
            },
        ] {
            roundtrip(op);
        }
    }

    #[test]
    fn decode_word_agrees_with_decode_at_every_pc() {
        // decode_word is pc-free; decode must agree with it at any pc,
        // differing only in the fault's reported site.
        for opc in 0u8..=0x20 {
            let mut w = [0u8; 8];
            w[0] = opc;
            w[1] = 1;
            w[2] = 2;
            match Op::decode_word(w) {
                Some(op) => {
                    assert_eq!(Op::decode(w, 0x1000).expect("ok"), op);
                    assert_eq!(Op::decode(w, 0xdead_0000).expect("ok"), op);
                }
                None => {
                    assert!(matches!(
                        Op::decode(w, 0x40),
                        Err(Fault::BadOpcode { pc: 0x40, .. })
                    ));
                }
            }
        }
    }

    #[test]
    fn decode_rejects_bad_opcode() {
        let mut w = [0u8; 8];
        w[0] = 0x7f;
        assert!(matches!(
            Op::decode(w, 0x40),
            Err(Fault::BadOpcode {
                pc: 0x40,
                opcode: 0x7f
            })
        ));
    }

    #[test]
    fn decode_rejects_bad_register() {
        let mut w = Op::Mov {
            rd: Reg(0),
            rs: Reg(1),
        }
        .encode();
        w[1] = 15; // Out of range register index.
        assert!(Op::decode(w, 0).is_err());
    }

    #[test]
    fn reg_parsing() {
        assert_eq!(Reg::parse("r0"), Some(Reg(0)));
        assert_eq!(Reg::parse("r12"), Some(Reg(12)));
        assert_eq!(Reg::parse("r13"), None);
        assert_eq!(Reg::parse("fp"), Some(Reg::FP));
        assert_eq!(Reg::parse("sp"), Some(Reg::SP));
        assert_eq!(Reg::parse("x1"), None);
    }

    #[test]
    fn syscall_roundtrip() {
        for n in 0..10u8 {
            let s = Syscall::from_num(n).expect("valid");
            assert_eq!(s.num(), n);
        }
        assert!(Syscall::from_num(10).is_none());
    }

    #[test]
    fn store_and_branch_classification() {
        assert!(Op::St {
            rd: Reg(0),
            rs: Reg(1),
            off: 0
        }
        .is_store());
        assert!(Op::Push { rs: Reg(1) }.is_store());
        assert!(!Op::Ld {
            rd: Reg(0),
            rs: Reg(1),
            off: 0
        }
        .is_store());
        assert!(Op::Ret.is_indirect_branch());
        assert!(Op::CallR { rs: Reg(2) }.is_indirect_branch());
        assert!(!Op::Jmp { target: 0 }.is_indirect_branch());
    }
}
