//! Execution hooks — the attachment points for dynamic instrumentation.
//!
//! The machine calls into a [`Hook`] at well-defined points *before* state
//! mutation, so tools observe the pre-state (values about to be
//! overwritten, the stack before a `ret` pops it, and so on). The `dbi`
//! crate builds PIN-style tool multiplexing, mid-execution attach, and
//! overhead accounting on top of this trait; keeping the trait here lets
//! `svm` stay dependency-free.

use crate::alloc::FreeKind;
use crate::isa::{Op, Syscall};
use crate::machine::Machine;

/// Receiver for execution events.
///
/// All methods default to no-ops so tools implement only what they need.
/// The `&Machine` argument exposes the full pre-event architectural state.
pub trait Hook {
    /// Whether this hook ignores *every* event.
    ///
    /// Defaults to `false` (events are delivered). A hook returning
    /// `true` promises it observes nothing, allowing the machine to use
    /// the streamlined dispatch loop that skips event delivery
    /// entirely. The answer is re-checked on **every step**, so a hook
    /// whose liveness changes mid-execution (e.g. the `dbi`
    /// instrumenter when a tool attaches) transparently switches the
    /// machine between the fast path and the fully hooked path — this
    /// is what keeps mid-execution attach working with the predecoded
    /// instruction cache enabled.
    ///
    /// The superblock tier leans on the same contract, one level up:
    /// [`Machine::run`](crate::machine::Machine::run) re-asks
    /// `is_passive` before **every block dispatch** (never caching the
    /// answer on the machine), and no hook code runs inside a block, so
    /// an attach between dispatches always lands before the next
    /// instruction — the tier can never skip an instruction a
    /// freshly-attached tool was owed.
    fn is_passive(&self) -> bool {
        false
    }

    /// Called before each instruction executes. `op` is already decoded.
    fn on_insn(&mut self, _m: &Machine, _pc: u32, _op: &Op) {}

    /// Called before a data read of `size` bytes at `addr` completes;
    /// `val` is the value being read (zero-extended).
    fn on_mem_read(&mut self, _m: &Machine, _pc: u32, _addr: u32, _size: u8, _val: u32) {}

    /// Called before a data write of `size` bytes at `addr`; `val` is the
    /// value about to be written (the old value is still readable).
    fn on_mem_write(&mut self, _m: &Machine, _pc: u32, _addr: u32, _size: u8, _val: u32) {}

    /// Called when a `call`/`callr` transfers control. `ret_addr` is the
    /// return address that was pushed; `sp` is the stack pointer *after*
    /// the push (i.e. the slot holding the return address).
    fn on_call(&mut self, _m: &Machine, _pc: u32, _target: u32, _ret_addr: u32, _sp: u32) {}

    /// Called when a `ret` is about to pop `ret_target` from slot `sp`.
    fn on_ret(&mut self, _m: &Machine, _pc: u32, _ret_target: u32, _sp: u32) {}

    /// Called after a successful guest `alloc` of `size` bytes at `ptr`.
    fn on_alloc(&mut self, _m: &Machine, _pc: u32, _size: u32, _ptr: u32) {}

    /// Called after a guest `free` of `ptr` (with its double-free verdict).
    fn on_free(&mut self, _m: &Machine, _pc: u32, _ptr: u32, _kind: FreeKind) {}

    /// Called after a syscall completes; `ret` is the value placed in r0.
    fn on_syscall(&mut self, _m: &Machine, _pc: u32, _sc: Syscall, _args: [u32; 4], _ret: u32) {}

    /// Called after a `read` syscall delivered input bytes: `stream_off`
    /// is the offset of `data[0]` within connection `conn`'s input stream,
    /// and `addr` is the guest buffer it was copied to. This is the taint
    /// source event.
    fn on_input(&mut self, _m: &Machine, _conn: u32, _stream_off: u32, _addr: u32, _data: &[u8]) {}
}

/// A hook that ignores everything (plain, uninstrumented execution).
#[derive(Debug, Default, Clone, Copy)]
pub struct NopHook;

impl Hook for NopHook {
    fn is_passive(&self) -> bool {
        true
    }
}

/// Chain two hooks, delivering every event to both (first, then second).
pub struct Pair<'a, A: Hook + ?Sized, B: Hook + ?Sized>(pub &'a mut A, pub &'a mut B);

impl<A: Hook + ?Sized, B: Hook + ?Sized> Hook for Pair<'_, A, B> {
    fn is_passive(&self) -> bool {
        self.0.is_passive() && self.1.is_passive()
    }
    fn on_insn(&mut self, m: &Machine, pc: u32, op: &Op) {
        self.0.on_insn(m, pc, op);
        self.1.on_insn(m, pc, op);
    }
    fn on_mem_read(&mut self, m: &Machine, pc: u32, addr: u32, size: u8, val: u32) {
        self.0.on_mem_read(m, pc, addr, size, val);
        self.1.on_mem_read(m, pc, addr, size, val);
    }
    fn on_mem_write(&mut self, m: &Machine, pc: u32, addr: u32, size: u8, val: u32) {
        self.0.on_mem_write(m, pc, addr, size, val);
        self.1.on_mem_write(m, pc, addr, size, val);
    }
    fn on_call(&mut self, m: &Machine, pc: u32, target: u32, ret_addr: u32, sp: u32) {
        self.0.on_call(m, pc, target, ret_addr, sp);
        self.1.on_call(m, pc, target, ret_addr, sp);
    }
    fn on_ret(&mut self, m: &Machine, pc: u32, ret_target: u32, sp: u32) {
        self.0.on_ret(m, pc, ret_target, sp);
        self.1.on_ret(m, pc, ret_target, sp);
    }
    fn on_alloc(&mut self, m: &Machine, pc: u32, size: u32, ptr: u32) {
        self.0.on_alloc(m, pc, size, ptr);
        self.1.on_alloc(m, pc, size, ptr);
    }
    fn on_free(&mut self, m: &Machine, pc: u32, ptr: u32, kind: FreeKind) {
        self.0.on_free(m, pc, ptr, kind);
        self.1.on_free(m, pc, ptr, kind);
    }
    fn on_syscall(&mut self, m: &Machine, pc: u32, sc: Syscall, args: [u32; 4], ret: u32) {
        self.0.on_syscall(m, pc, sc, args, ret);
        self.1.on_syscall(m, pc, sc, args, ret);
    }
    fn on_input(&mut self, m: &Machine, conn: u32, stream_off: u32, addr: u32, data: &[u8]) {
        self.0.on_input(m, conn, stream_off, addr, data);
        self.1.on_input(m, conn, stream_off, addr, data);
    }
}
