//! Superblock execution tier: fused straight-line runs above the icache.
//!
//! The predecoded instruction cache ([`crate::icache`]) removed
//! fetch+decode from the hot loop, but dispatch itself still pays the
//! full per-instruction toll: a status check, a hook-liveness check, a
//! cache probe, and a jump-table dispatch for every retired instruction.
//! This module adds a second tier above it, in the spirit of the
//! check-once-per-executable-region pattern JITScanner-style systems
//! use: *superblocks* — maximal straight-line runs of decoded [`Op`]s —
//! are compiled once into chains of closures and then executed as one
//! unit, with the architectural registers cached in locals for the whole
//! block ([`SbCtx`]). A hot loop body dispatches once per block instead
//! of once per instruction.
//!
//! A superblock ends at the first
//!
//! - control-flow or effectful terminator (`jmp`/`jcond`/`jmpr`/
//!   `call`/`callr`/`ret`/`sys`/`halt`),
//! - undecodable word (the interpreter's slow path raises the precise
//!   fault), or
//! - page boundary (blocks never span pages, so the per-page
//!   write-generation check covers the whole block).
//!
//! Runs shorter than a small minimum fusion length ([`MIN_FUSE`] ops)
//! are cached but reported as bypasses: the fixed per-dispatch cost
//! (probe + register copy-in/out) does not amortize over one or two
//! instructions, and the icache tier already runs those at full speed.
//!
//! Correctness contract, mirroring the icache's: executing a superblock
//! is **bit-identical** to interpreting its instructions one at a time —
//! same register/flag effects, same [`Mem`] traffic, same virtual-clock
//! ticks, same fault at the same pc with the cpu frozen exactly as the
//! interpreter would freeze it, and the same preemption point under a
//! cycle deadline. The dispatcher (`Machine::run`) only enters this tier
//! while the active [`crate::hook::Hook`] reports itself passive, and it
//! re-checks liveness before every dispatch, so a tool attached
//! mid-execution still observes every subsequent instruction through the
//! per-instruction path.
//!
//! Invalidation reuses the memory write generations exactly as the
//! icache does: blocks are keyed by `(entry pc, Layout::cache_tag, NX)`,
//! validated against [`Mem::write_seq`]/[`Mem::page_gen`] on every
//! dispatch, and rebuilt when their page was written. Stores *inside* a
//! block check the block's own page generation after every executed
//! store and bail back to the interpreter if the block mutated itself,
//! so self-modifying code can never run stale fused ops. The cache is
//! cold after `Clone` (a clone is a checkpoint) and is flushed alongside
//! the decode cache on rollback and layout changes.
//!
//! Accounting note (count-once contract): superblock counters are kept
//! strictly separate from [`crate::icache::CacheStats`]. Both tiers
//! observe the same dirtying events (a rollback flush, a write-generation
//! bump), and folding them into one counter would double-count a single
//! event; `Machine::icache_stats` therefore reports only decode-cache
//! activity and `Machine::superblock_stats` only block activity.

use std::sync::Arc;

use crate::clock::{cost, Clock};
use crate::cpu::Flags;
use crate::error::Fault;
use crate::icache::SLOTS_PER_PAGE;
use crate::isa::{Op, INSN_SIZE, NUM_REGS};
use crate::loader::Layout;
use crate::mem::{Mem, PAGE_SIZE};

/// Upper bound on cached superblocks before a wholesale flush. Distinct
/// entry pcs into the same run get distinct blocks, so the bound is
/// larger than the icache's page bound but still small enough that the
/// linear probe in [`SbCache::find`] stays cheap.
const MAX_BLOCKS: usize = 192;

/// Minimum fused run length worth dispatching as a superblock. A
/// dispatch pays fixed overhead (cache probe, register copy-in/out)
/// that only amortizes across several instructions; on a branch-dense
/// 2-instruction loop body the tier measured *slower* than the plain
/// icache (0.82x). Blocks shorter than this are still cached — so hot
/// short targets don't recompile every visit — but `lookup` reports
/// them as bypasses and the per-instruction icache tier runs them.
const MIN_FUSE: usize = 3;

/// Execution context for one superblock dispatch: the architectural
/// registers and flags are *copied* into this struct (registers cached
/// in locals across the block) and written back by the executor at every
/// block exit — normal end, fault, deadline preemption, or
/// self-modification bailout.
pub struct SbCtx<'m> {
    /// Local copy of the register file (written back on exit).
    pub regs: [u32; NUM_REGS],
    /// Local copy of the comparison flags (written back on exit).
    pub flags: Flags,
    /// Guest memory (loads/stores go straight through, so memory faults
    /// and write-generation bumps are identical to the interpreter's).
    pub mem: &'m mut Mem,
    /// Virtual clock; every op ticks exactly as the interpreter would.
    pub clock: &'m mut Clock,
    /// pc of the op currently executing (for precise fault payloads).
    pub pc: u32,
    /// Lowest valid stack address (from the machine's [`Layout`]).
    pub stack_base: u32,
    /// One past the highest valid stack address.
    pub stack_top: u32,
}

/// One compiled operation inside a superblock: a closure over the
/// decoded fields. Returns `Ok(true)` iff the op performed a guest
/// store (the executor then re-checks the block's own page generation),
/// or the precise fault the interpreter would raise at this pc.
pub type SbOp = Box<dyn for<'m> Fn(&mut SbCtx<'m>) -> Result<bool, Fault> + Send + Sync>;

/// A dispatchable reference to a validated superblock, returned by
/// [`SbCache::lookup`]. Holds the closure chain by `Arc` so the executor
/// can run it while the cache remains free for stats updates.
pub struct SbRef {
    /// The compiled ops, in program order from the entry pc.
    pub ops: Arc<[SbOp]>,
    /// Page the block was decoded from (blocks never span pages).
    pub pno: u32,
    /// [`Mem::page_gen`] the block was validated against; stores inside
    /// the block compare against this to detect self-modification.
    pub gen: u64,
}

/// Superblock-tier counters, exported as `svm.superblock.*` and kept
/// separate from the decode cache's [`crate::icache::CacheStats`] so a
/// single page-dirtying event is never counted twice across tiers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SbStats {
    /// Blocks compiled (first dispatch at an entry pc).
    pub built: u64,
    /// Block dispatches (each executes >= 1 fused instruction).
    pub dispatches: u64,
    /// Instructions retired inside superblocks.
    pub insns: u64,
    /// Block rebuilds forced by a write to the block's page.
    pub invalidations: u64,
    /// Mid-block exits because the block wrote its own page (SMC).
    pub bailouts: u64,
    /// Dispatch attempts that fell back to the interpreter (disabled
    /// tier, unaligned pc, non-executable page, or a block shorter than
    /// the minimum fusion length — including a terminator at entry).
    pub bypasses: u64,
    /// Wholesale flushes (layout change, NX toggle, capacity, restore).
    pub flushes: u64,
}

/// One compiled superblock.
struct Superblock {
    /// Entry pc (blocks are keyed by exact entry).
    entry: u32,
    /// Page the block lives on.
    pno: u32,
    /// [`Mem::page_gen`] the ops were compiled against.
    gen: u64,
    /// [`Mem::write_seq`] at the last validation.
    seen_seq: u64,
    /// The closure chain; shorter than [`MIN_FUSE`] (possibly empty)
    /// when the run at the entry pc is too short to be worth fusing
    /// (cached anyway so hot branch targets don't recompile every time).
    ops: Arc<[SbOp]>,
}

impl Superblock {
    /// Compile the maximal straight-line run starting at `entry`.
    /// Returns `None` only if the page is unmapped.
    fn build(entry: u32, mem: &Mem) -> Option<Superblock> {
        let pno = entry / PAGE_SIZE as u32;
        let bytes = mem.page_bytes(pno)?;
        let start = ((entry % PAGE_SIZE as u32) / INSN_SIZE) as usize;
        let mut ops: Vec<SbOp> = Vec::new();
        for slot in start..SLOTS_PER_PAGE {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[slot * INSN_SIZE as usize..(slot + 1) * INSN_SIZE as usize]);
            let Some(op) = Op::decode_word(w) else {
                break; // undecodable: interpreter raises the precise fault
            };
            let Some(compiled) = compile(op) else {
                break; // terminator: block ends, interpreter takes over
            };
            ops.push(compiled);
        }
        Some(Superblock {
            entry,
            pno,
            gen: mem.page_gen(pno),
            seen_seq: mem.write_seq(),
            ops: ops.into(),
        })
    }
}

/// The per-machine superblock cache (tier 2 above the decode cache).
///
/// `Clone` is intentionally *cold*, exactly like
/// [`crate::icache::DecodeCache`]: machine clones are checkpoints, and
/// compiled blocks must never leak across a rollback.
pub struct SbCache {
    enabled: bool,
    /// [`Layout::cache_tag`] the blocks were compiled against.
    layout_tag: u64,
    /// NX setting the blocks were compiled against.
    nx: bool,
    blocks: Vec<Superblock>,
    /// Most recently dispatched block (hot loops re-enter one block).
    mru: usize,
    stats: SbStats,
}

impl Clone for SbCache {
    /// Cloning yields a *cold* cache: clones are checkpoints/rollbacks
    /// and must recompile everything against their own memory. Together
    /// with the dispatcher re-checking hook liveness on every dispatch,
    /// this guarantees a clone's first instruction is never skipped by a
    /// passive-path decision made before the clone.
    fn clone(&self) -> SbCache {
        SbCache::new(self.enabled)
    }
}

impl SbCache {
    /// An empty cache.
    pub fn new(enabled: bool) -> SbCache {
        SbCache {
            enabled,
            layout_tag: 0,
            nx: false,
            blocks: Vec::new(),
            mru: 0,
            stats: SbStats::default(),
        }
    }

    /// Whether the tier is consulted at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable the tier (disabling drops all blocks).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.blocks.clear();
            self.mru = 0;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SbStats {
        self.stats
    }

    /// Number of blocks currently compiled.
    pub fn cached_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Drop every block (layout re-randomization, rollback restore, or
    /// any out-of-band replacement of the machine's memory).
    pub fn flush(&mut self) {
        if !self.blocks.is_empty() {
            self.stats.flushes += 1;
        }
        self.blocks.clear();
        self.mru = 0;
    }

    /// Record one finished dispatch: `retired` fused instructions, and
    /// whether the block bailed out after writing its own page.
    pub fn note_dispatch(&mut self, retired: u64, bailed: bool) {
        self.stats.insns += retired;
        if bailed {
            self.stats.bailouts += 1;
        }
    }

    /// Look up (building/validating as needed) the superblock entered at
    /// `pc`. `None` means "take the per-instruction path" — tier
    /// disabled, unaligned pc, non-executable page, or a fused run
    /// shorter than [`MIN_FUSE`] — and never loses a fault: the
    /// interpreter reproduces it precisely.
    pub fn lookup(&mut self, mem: &Mem, layout: &Layout, pc: u32) -> Option<SbRef> {
        if !self.enabled {
            return None;
        }
        let tag = layout.cache_tag();
        if self.layout_tag != tag || self.nx != mem.nx {
            self.flush();
            self.layout_tag = tag;
            self.nx = mem.nx;
        }
        if !pc.is_multiple_of(INSN_SIZE) {
            self.stats.bypasses += 1;
            return None;
        }
        let pno = pc / PAGE_SIZE as u32;
        let idx = match self.find(pc) {
            Some(i) => i,
            None => {
                if !mem.page_exec_ok(pno) {
                    self.stats.bypasses += 1;
                    return None;
                }
                if self.blocks.len() >= MAX_BLOCKS {
                    self.flush();
                }
                let built = Superblock::build(pc, mem)?;
                self.stats.built += 1;
                self.blocks.push(built);
                self.blocks.len() - 1
            }
        };
        self.mru = idx;
        // Same O(1) validation ladder as the decode cache: while nothing
        // anywhere was written the block is provably current; otherwise
        // compare the block's page generation and recompile on mismatch.
        let seq = mem.write_seq();
        if self.blocks[idx].seen_seq != seq {
            if self.blocks[idx].gen != mem.page_gen(pno) {
                match Superblock::build(pc, mem) {
                    Some(rebuilt) => {
                        self.blocks[idx] = rebuilt;
                        self.stats.invalidations += 1;
                    }
                    None => {
                        // Page no longer mapped: drop the block; the
                        // interpreter raises the precise fault.
                        self.blocks.swap_remove(idx);
                        self.mru = 0;
                        self.stats.bypasses += 1;
                        return None;
                    }
                }
            }
            self.blocks[idx].seen_seq = seq;
        }
        let b = &self.blocks[idx];
        if b.ops.len() < MIN_FUSE {
            self.stats.bypasses += 1;
            return None;
        }
        self.stats.dispatches += 1;
        Some(SbRef {
            ops: Arc::clone(&b.ops),
            pno: b.pno,
            gen: b.gen,
        })
    }

    fn find(&self, pc: u32) -> Option<usize> {
        if let Some(b) = self.blocks.get(self.mru) {
            if b.entry == pc {
                return Some(self.mru);
            }
        }
        self.blocks.iter().position(|b| b.entry == pc)
    }
}

/// Compile one straight-line op into its closure, or `None` for a
/// terminator. Each closure replicates the interpreter's exact effect
/// order for its op: the executor has already counted the instruction
/// and ticked `cost::INSN`; the closure ticks any additional cost
/// (`cost::MEM`) before touching memory, exactly as `exec_one` does.
fn compile(op: Op) -> Option<SbOp> {
    Some(match op {
        Op::Nop => Box::new(|_| Ok(false)),
        Op::MovI { rd, imm } => {
            let rd = rd.idx();
            Box::new(move |c| {
                c.regs[rd] = imm;
                Ok(false)
            })
        }
        Op::Mov { rd, rs } => {
            let (rd, rs) = (rd.idx(), rs.idx());
            Box::new(move |c| {
                c.regs[rd] = c.regs[rs];
                Ok(false)
            })
        }
        Op::Ld { rd, rs, off } => {
            let (rd, rs) = (rd.idx(), rs.idx());
            Box::new(move |c| {
                c.clock.tick(cost::MEM);
                let addr = c.regs[rs].wrapping_add(off as u32);
                c.regs[rd] = c.mem.read_u32(c.pc, addr)?;
                Ok(false)
            })
        }
        Op::LdB { rd, rs, off } => {
            let (rd, rs) = (rd.idx(), rs.idx());
            Box::new(move |c| {
                c.clock.tick(cost::MEM);
                let addr = c.regs[rs].wrapping_add(off as u32);
                c.regs[rd] = c.mem.read_u8(c.pc, addr)? as u32;
                Ok(false)
            })
        }
        Op::St { rd, rs, off } => {
            let (rd, rs) = (rd.idx(), rs.idx());
            Box::new(move |c| {
                c.clock.tick(cost::MEM);
                let addr = c.regs[rd].wrapping_add(off as u32);
                c.mem.write_u32(c.pc, addr, c.regs[rs])?;
                Ok(true)
            })
        }
        Op::StB { rd, rs, off } => {
            let (rd, rs) = (rd.idx(), rs.idx());
            Box::new(move |c| {
                c.clock.tick(cost::MEM);
                let addr = c.regs[rd].wrapping_add(off as u32);
                c.mem.write_u8(c.pc, addr, (c.regs[rs] & 0xff) as u8)?;
                Ok(true)
            })
        }
        Op::Alu { op, rd, rs1, rs2 } => {
            let (rd, rs1, rs2) = (rd.idx(), rs1.idx(), rs2.idx());
            Box::new(move |c| {
                c.regs[rd] = op.eval(c.regs[rs1], c.regs[rs2], c.pc)?;
                Ok(false)
            })
        }
        Op::AluI { op, rd, rs1, imm } => {
            let (rd, rs1) = (rd.idx(), rs1.idx());
            Box::new(move |c| {
                c.regs[rd] = op.eval(c.regs[rs1], imm as u32, c.pc)?;
                Ok(false)
            })
        }
        Op::Cmp { rs1, rs2 } => {
            let (rs1, rs2) = (rs1.idx(), rs2.idx());
            Box::new(move |c| {
                let (a, b) = (c.regs[rs1], c.regs[rs2]);
                c.flags.set_cmp(a, b);
                Ok(false)
            })
        }
        Op::CmpI { rs1, imm } => {
            let rs1 = rs1.idx();
            Box::new(move |c| {
                let a = c.regs[rs1];
                c.flags.set_cmp(a, imm);
                Ok(false)
            })
        }
        Op::Push { rs } => {
            let rs = rs.idx();
            const SP: usize = NUM_REGS - 1;
            Box::new(move |c| {
                c.clock.tick(cost::MEM);
                let sp = c.regs[SP].wrapping_sub(4);
                if sp < c.stack_base || sp >= c.stack_top {
                    return Err(Fault::StackOverflow { pc: c.pc, sp });
                }
                c.mem.write_u32(c.pc, sp, c.regs[rs])?;
                c.regs[SP] = sp;
                Ok(true)
            })
        }
        Op::Pop { rd } => {
            let rd = rd.idx();
            const SP: usize = NUM_REGS - 1;
            Box::new(move |c| {
                c.clock.tick(cost::MEM);
                let sp = c.regs[SP];
                let v = c.mem.read_u32(c.pc, sp)?;
                c.regs[rd] = v;
                c.regs[SP] = sp.wrapping_add(4);
                Ok(false)
            })
        }
        // Terminators: anything that moves the pc non-sequentially,
        // halts, or enters the kernel model ends the block.
        Op::Halt
        | Op::Jmp { .. }
        | Op::JCond { .. }
        | Op::JmpR { .. }
        | Op::Call { .. }
        | Op::CallR { .. }
        | Op::Ret
        | Op::Sys { .. } => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Reg;
    use crate::mem::Perm;

    fn code_mem(ops: &[Op]) -> Mem {
        let mut m = Mem::new();
        m.map(0x1000, PAGE_SIZE as u32, Perm::RWX, "code")
            .expect("map");
        let mut bytes = Vec::new();
        for op in ops {
            bytes.extend_from_slice(&op.encode());
        }
        m.write_bytes_host(0x1000, &bytes).expect("w");
        m
    }

    #[test]
    fn block_ends_at_terminator_and_caches_by_entry() {
        let mem = code_mem(&[
            Op::MovI { rd: Reg(1), imm: 3 },
            Op::Nop,
            Op::Nop,
            Op::Jmp { target: 0x1000 },
        ]);
        let mut c = SbCache::new(true);
        let lay = Layout::nominal();
        let b = c.lookup(&mem, &lay, 0x1000).expect("block");
        assert_eq!(b.ops.len(), 3, "movi + nop + nop, jmp terminates");
        assert_eq!(c.stats().built, 1);
        assert!(c.lookup(&mem, &lay, 0x1000).is_some(), "cached re-dispatch");
        assert_eq!(c.stats().built, 1, "no rebuild");
        assert_eq!(c.stats().dispatches, 2);
    }

    #[test]
    fn short_blocks_are_cached_bypasses() {
        // A 2-op run is below the minimum fusion length: cached (no
        // recompilation on re-entry) but never dispatched — the icache
        // tier runs it without the per-dispatch overhead.
        let mem = code_mem(&[Op::Nop, Op::Nop, Op::Jmp { target: 0x1000 }]);
        let mut c = SbCache::new(true);
        let lay = Layout::nominal();
        assert!(c.lookup(&mem, &lay, 0x1000).is_none());
        assert!(c.lookup(&mem, &lay, 0x1000).is_none());
        assert_eq!(c.stats().built, 1, "short block cached, not recompiled");
        assert_eq!(c.stats().bypasses, 2);
        assert_eq!(c.stats().dispatches, 0);
    }

    #[test]
    fn terminator_at_entry_is_a_cached_bypass() {
        let mem = code_mem(&[Op::Halt]);
        let mut c = SbCache::new(true);
        let lay = Layout::nominal();
        assert!(c.lookup(&mem, &lay, 0x1000).is_none());
        assert!(c.lookup(&mem, &lay, 0x1000).is_none());
        assert_eq!(c.stats().built, 1, "empty block cached, not recompiled");
        assert_eq!(c.stats().bypasses, 2);
    }

    #[test]
    fn write_to_block_page_invalidates() {
        let mem = code_mem(&[Op::Nop, Op::Nop, Op::Nop, Op::Nop, Op::Nop, Op::Halt]);
        let mut c = SbCache::new(true);
        let lay = Layout::nominal();
        assert_eq!(c.lookup(&mem, &lay, 0x1000).expect("b").ops.len(), 5);
        let mut mem = mem;
        // Rewrite slot 3 to a terminator: the block must shrink.
        mem.write_bytes_host(0x1018, &Op::Halt.encode()).expect("w");
        assert_eq!(c.lookup(&mem, &lay, 0x1000).expect("b").ops.len(), 3);
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn unaligned_nonexec_and_disabled_bypass() {
        let mem = code_mem(&[Op::Nop, Op::Halt]);
        let mut c = SbCache::new(true);
        let lay = Layout::nominal();
        assert!(c.lookup(&mem, &lay, 0x1004).is_none(), "unaligned");
        assert!(c.lookup(&mem, &lay, 0x9000).is_none(), "unmapped");
        assert!(c.stats().bypasses >= 2);
        let mut off = SbCache::new(false);
        assert!(off.lookup(&mem, &lay, 0x1000).is_none());
        assert_eq!(off.stats(), SbStats::default(), "disabled tier is inert");
    }

    #[test]
    fn layout_and_nx_changes_flush() {
        let mem = code_mem(&[Op::Nop, Op::Nop, Op::Nop, Op::Halt]);
        let mut c = SbCache::new(true);
        let lay = Layout::nominal();
        assert!(c.lookup(&mem, &lay, 0x1000).is_some());
        let mut other = Layout::nominal();
        other.code_base += PAGE_SIZE as u32;
        assert!(c.lookup(&mem, &other, 0x1000).is_some());
        assert_eq!(c.stats().flushes, 1, "layout change flushed");
        let mut mem = mem;
        mem.nx = true;
        assert!(c.lookup(&mem, &other, 0x1000).is_some());
        assert_eq!(c.stats().flushes, 2, "NX toggle flushed");
    }

    #[test]
    fn clone_is_cold() {
        let mem = code_mem(&[Op::Nop, Op::Nop, Op::Nop, Op::Halt]);
        let mut c = SbCache::new(true);
        assert!(c.lookup(&mem, &Layout::nominal(), 0x1000).is_some());
        let snap = c.clone();
        assert!(snap.enabled());
        assert_eq!(snap.cached_blocks(), 0, "clone starts cold");
        assert_eq!(snap.stats(), SbStats::default());
    }
}
