//! Paged guest memory with copy-on-write snapshot support.
//!
//! Pages are reference-counted: taking a checkpoint clones the page table
//! (bumping `Arc` counts) in O(mapped pages) without copying data, and the
//! first write to a shared page copies it — the same asymptotics as the
//! `fork()`-based shadow-process checkpoints of Rx/Flashback that Sweeper
//! builds on.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{Access, Fault};

/// Size in bytes of one page.
pub const PAGE_SIZE: usize = 4096;

/// One page of guest memory.
#[derive(Clone)]
pub struct Page(pub Box<[u8; PAGE_SIZE]>);

impl Page {
    /// A fresh zeroed page.
    pub fn zeroed() -> Page {
        Page(Box::new([0u8; PAGE_SIZE]))
    }
}

/// Page permissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perm {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Perm {
    /// Read-only data.
    pub const R: Perm = Perm {
        r: true,
        w: false,
        x: false,
    };
    /// Read-write data.
    pub const RW: Perm = Perm {
        r: true,
        w: true,
        x: false,
    };
    /// Read-execute (code).
    pub const RX: Perm = Perm {
        r: true,
        w: false,
        x: true,
    };
    /// Read-write-execute (pre-NX data segments, 2003-era realism).
    pub const RWX: Perm = Perm {
        r: true,
        w: true,
        x: true,
    };

    fn allows(&self, access: Access) -> bool {
        match access {
            Access::Read => self.r,
            Access::Write => self.w,
            Access::Exec => self.x,
        }
    }
}

/// A named mapped region, for core-dump analysis and layout queries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Inclusive start address (page aligned).
    pub start: u32,
    /// Length in bytes (page aligned).
    pub len: u32,
    /// Permissions applying to every page of the region.
    pub perm: Perm,
    /// Human-readable name (`code`, `lib`, `heap`, `stack`, ...).
    pub name: String,
}

impl Region {
    /// Whether `addr` falls inside this region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.start && (addr - self.start) < self.len
    }

    /// Exclusive end address.
    pub fn end(&self) -> u32 {
        self.start + self.len
    }
}

/// One mapped page plus its write-generation stamp.
///
/// The generation is bumped on every mutation of the page's bytes
/// (guest store, host injection, allocator metadata update); consumers
/// such as the predecoded instruction cache compare generations to
/// detect self-modifying code without scanning page contents.
#[derive(Clone)]
struct PageSlot {
    data: Arc<Page>,
    gen: u64,
}

/// The guest address space.
#[derive(Clone)]
pub struct Mem {
    pages: BTreeMap<u32, PageSlot>,
    perms: BTreeMap<u32, Perm>,
    regions: Vec<Region>,
    /// Monotone count of byte writes across the whole address space;
    /// see [`Mem::write_seq`].
    write_seq: u64,
    /// When true, exec permission is enforced (NX). The paper's 2003-era
    /// targets predate NX, so the default is `false` (data is executable).
    pub nx: bool,
}

impl Default for Mem {
    fn default() -> Self {
        Mem::new()
    }
}

impl Mem {
    /// An empty address space with NX disabled (period-accurate default).
    pub fn new() -> Mem {
        Mem {
            pages: BTreeMap::new(),
            perms: BTreeMap::new(),
            regions: Vec::new(),
            write_seq: 0,
            nx: false,
        }
    }

    fn page_of(addr: u32) -> u32 {
        addr / PAGE_SIZE as u32
    }

    /// Map a region of `len` bytes at `start` (both page-aligned) with the
    /// given permissions. Overlapping an existing mapping is an error.
    pub fn map(&mut self, start: u32, len: u32, perm: Perm, name: &str) -> Result<(), String> {
        if !start.is_multiple_of(PAGE_SIZE as u32)
            || !len.is_multiple_of(PAGE_SIZE as u32)
            || len == 0
        {
            return Err(format!("unaligned mapping {start:#x}+{len:#x}"));
        }
        if start.checked_add(len).is_none() {
            return Err(format!(
                "mapping {start:#x}+{len:#x} wraps the address space"
            ));
        }
        let first = Self::page_of(start);
        let count = len / PAGE_SIZE as u32;
        for p in first..first + count {
            if self.pages.contains_key(&p) {
                return Err(format!("page {:#x} already mapped", p * PAGE_SIZE as u32));
            }
        }
        for p in first..first + count {
            self.pages.insert(
                p,
                PageSlot {
                    data: Arc::new(Page::zeroed()),
                    gen: 0,
                },
            );
            self.perms.insert(p, perm);
        }
        self.regions.push(Region {
            start,
            len,
            perm,
            name: to_owned(name),
        });
        Ok(())
    }

    /// The region table (sorted by creation order).
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Find the region containing `addr`, if any.
    pub fn region_of(&self, addr: u32) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(addr))
    }

    /// Number of currently mapped pages.
    pub fn mapped_pages(&self) -> usize {
        self.pages.len()
    }

    /// Number of pages whose storage is shared with a snapshot (`Arc`
    /// strong count > 1). Used by the checkpoint cost model.
    pub fn shared_pages(&self) -> usize {
        self.pages
            .values()
            .filter(|p| Arc::strong_count(&p.data) > 1)
            .count()
    }

    /// Identity of each page's backing storage (for copy-on-write
    /// accounting): two address spaces hold the same physical page iff
    /// the identities are equal.
    pub fn page_storage_ids(&self) -> impl Iterator<Item = usize> + '_ {
        self.pages.values().map(|p| Arc::as_ptr(&p.data) as usize)
    }

    /// Monotone count of byte writes across the whole address space.
    ///
    /// Unchanged `write_seq` is a cheap O(1) proof that no page changed
    /// since a consumer last validated its view; the predecoded
    /// instruction cache uses it to skip per-page generation checks on
    /// the hot path.
    pub fn write_seq(&self) -> u64 {
        self.write_seq
    }

    /// Write generation of page `pno` (0 if never written or unmapped).
    ///
    /// Two observations of the same page with equal generations are
    /// guaranteed to have seen identical bytes.
    pub fn page_gen(&self, pno: u32) -> u64 {
        self.pages.get(&pno).map(|p| p.gen).unwrap_or(0)
    }

    /// Read-only view of page `pno`'s bytes, if mapped.
    pub fn page_bytes(&self, pno: u32) -> Option<&[u8; PAGE_SIZE]> {
        self.pages.get(&pno).map(|p| &*p.data.0)
    }

    /// Whether an instruction fetch from page `pno` would pass the
    /// permission check (mirrors the per-byte check in [`Mem::fetch`],
    /// including the pre-NX "readable implies executable" default).
    pub fn page_exec_ok(&self, pno: u32) -> bool {
        match self.perms.get(&pno) {
            Some(p) => {
                if self.nx {
                    p.x
                } else {
                    p.r
                }
            }
            None => false,
        }
    }

    fn check(&self, pc: u32, addr: u32, access: Access) -> Result<(u32, usize), Fault> {
        let pno = Self::page_of(addr);
        let perm = match self.perms.get(&pno) {
            Some(p) => *p,
            None => return Err(Fault::Unmapped { pc, addr, access }),
        };
        let effective_allows = if access == Access::Exec && !self.nx {
            perm.r
        } else {
            perm.allows(access)
        };
        if !effective_allows {
            return Err(Fault::Protection { pc, addr, access });
        }
        Ok((pno, (addr % PAGE_SIZE as u32) as usize))
    }

    /// Read one byte; `pc` is the faulting instruction for diagnostics.
    pub fn read_u8(&self, pc: u32, addr: u32) -> Result<u8, Fault> {
        let (pno, off) = self.check(pc, addr, Access::Read)?;
        Ok(self.pages[&pno].data.0[off])
    }

    /// Write one byte.
    pub fn write_u8(&mut self, pc: u32, addr: u32, val: u8) -> Result<(), Fault> {
        let (pno, off) = self.check(pc, addr, Access::Write)?;
        let slot = self.pages.get_mut(&pno).expect("checked");
        Arc::make_mut(&mut slot.data).0[off] = val;
        self.write_seq += 1;
        slot.gen = self.write_seq;
        Ok(())
    }

    /// Read a little-endian 32-bit word (may straddle pages).
    pub fn read_u32(&self, pc: u32, addr: u32) -> Result<u32, Fault> {
        let mut b = [0u8; 4];
        for (i, out) in b.iter_mut().enumerate() {
            *out = self.read_u8(pc, addr.wrapping_add(i as u32))?;
        }
        Ok(u32::from_le_bytes(b))
    }

    /// Write a little-endian 32-bit word (may straddle pages).
    pub fn write_u32(&mut self, pc: u32, addr: u32, val: u32) -> Result<(), Fault> {
        for (i, byte) in val.to_le_bytes().iter().enumerate() {
            self.write_u8(pc, addr.wrapping_add(i as u32), *byte)?;
        }
        Ok(())
    }

    /// Fetch 8 instruction bytes, honouring exec permission.
    pub fn fetch(&self, pc: u32) -> Result<[u8; 8], Fault> {
        let mut b = [0u8; 8];
        for (i, out) in b.iter_mut().enumerate() {
            let addr = pc.wrapping_add(i as u32);
            let (pno, off) = self.check(pc, addr, Access::Exec)?;
            *out = self.pages[&pno].data.0[off];
        }
        Ok(b)
    }

    /// Bulk read for the host (analysis tools); faults like a guest read.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<Vec<u8>, Fault> {
        let mut v = Vec::with_capacity(len as usize);
        for i in 0..len {
            v.push(self.read_u8(0, addr.wrapping_add(i))?);
        }
        Ok(v)
    }

    /// Bulk write for the host (loader); faults like a guest write but
    /// bypasses write permission (the loader fills code pages).
    pub fn write_bytes_host(&mut self, addr: u32, data: &[u8]) -> Result<(), Fault> {
        for (i, b) in data.iter().enumerate() {
            let a = addr.wrapping_add(i as u32);
            let pno = Self::page_of(a);
            if !self.perms.contains_key(&pno) {
                return Err(Fault::Unmapped {
                    pc: 0,
                    addr: a,
                    access: Access::Write,
                });
            }
            let slot = self.pages.get_mut(&pno).expect("checked");
            Arc::make_mut(&mut slot.data).0[(a % PAGE_SIZE as u32) as usize] = *b;
            self.write_seq += 1;
            slot.gen = self.write_seq;
        }
        Ok(())
    }

    /// Read a NUL-terminated guest string (bounded at `max` bytes).
    pub fn read_cstr(&self, addr: u32, max: u32) -> Result<Vec<u8>, Fault> {
        let mut v = Vec::new();
        for i in 0..max {
            let b = self.read_u8(0, addr.wrapping_add(i))?;
            if b == 0 {
                break;
            }
            v.push(b);
        }
        Ok(v)
    }

    /// Snapshot the page table: O(pages) `Arc` clones, no data copies.
    pub fn snapshot(&self) -> Mem {
        self.clone()
    }

    /// Iterate every mapped page number with its write generation, in
    /// ascending page order.
    pub fn page_table(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.pages.iter().map(|(pno, s)| (*pno, s.gen))
    }

    /// Iterate the pages whose write generation advanced past `gen`
    /// (i.e. pages dirtied since a consumer last observed `write_seq()
    /// == gen`), in ascending page order. Newly mapped pages start at
    /// generation 0, so a consumer that needs *every* page it has never
    /// seen must also diff [`Mem::page_table`] against its own table —
    /// but this address space never unmaps, and all mapping happens at
    /// load time, so post-boot consumers only ever see the gen ladder
    /// move.
    pub fn dirty_pages_since(&self, gen: u64) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.pages
            .iter()
            .filter(move |(_, s)| s.gen > gen)
            .map(|(pno, s)| (*pno, s.gen))
    }

    /// Capture page `pno`'s backing storage by reference: an O(1) `Arc`
    /// clone plus the page's generation. The captured page is immutable
    /// from the caller's perspective — a later guest write to the same
    /// page goes through `Arc::make_mut` and copies first (the same
    /// copy-on-write discipline [`Mem::snapshot`] relies on).
    pub fn page_arc(&self, pno: u32) -> Option<(Arc<Page>, u64)> {
        self.pages.get(&pno).map(|s| (Arc::clone(&s.data), s.gen))
    }

    /// Clone the address-space *skeleton*: permissions, regions, NX flag
    /// and the `write_seq` watermark, with an **empty** page table. The
    /// incremental checkpoint engine stores one skeleton per snapshot and
    /// reconstructs the page table from its delta chain via
    /// [`Mem::restore_page`]; the pair is bit-identical to a full
    /// [`Mem::snapshot`] once every page is restored.
    pub fn skeleton(&self) -> Mem {
        Mem {
            pages: BTreeMap::new(),
            perms: self.perms.clone(),
            regions: self.regions.clone(),
            write_seq: self.write_seq,
            nx: self.nx,
        }
    }

    /// Reinstate page `pno` with explicit backing storage and write
    /// generation (the inverse of [`Mem::page_arc`], used when
    /// reconstructing an address space from an incremental checkpoint).
    /// Replaces any existing slot for `pno`.
    pub fn restore_page(&mut self, pno: u32, data: Arc<Page>, gen: u64) {
        self.pages.insert(pno, PageSlot { data, gen });
    }
}

fn to_owned(s: &str) -> String {
    s.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_with(start: u32, pages: u32, perm: Perm) -> Mem {
        let mut m = Mem::new();
        m.map(start, pages * PAGE_SIZE as u32, perm, "t")
            .expect("map");
        m
    }

    #[test]
    fn map_rejects_unaligned_and_overlap() {
        let mut m = Mem::new();
        assert!(m.map(10, PAGE_SIZE as u32, Perm::RW, "a").is_err());
        assert!(m.map(0x1000, 100, Perm::RW, "a").is_err());
        m.map(0x1000, 0x2000, Perm::RW, "a").expect("map");
        assert!(m.map(0x2000, 0x1000, Perm::RW, "b").is_err());
        assert!(m.map(0xffff_f000, 0x2000, Perm::RW, "wrap").is_err());
    }

    #[test]
    fn read_write_roundtrip_and_straddle() {
        let mut m = mem_with(0x1000, 2, Perm::RW);
        m.write_u32(0, 0x1ffe, 0xa1b2_c3d4)
            .expect("straddling write");
        assert_eq!(m.read_u32(0, 0x1ffe).expect("read"), 0xa1b2_c3d4);
        assert_eq!(m.read_u8(0, 0x1ffe).expect("read"), 0xd4);
    }

    #[test]
    fn unmapped_access_faults_with_pc() {
        let m = mem_with(0x1000, 1, Perm::RW);
        match m.read_u8(0x40, 0x5000) {
            Err(Fault::Unmapped {
                pc: 0x40,
                addr: 0x5000,
                access: Access::Read,
            }) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut m = mem_with(0x1000, 1, Perm::R);
        assert!(matches!(
            m.write_u8(0, 0x1000, 1),
            Err(Fault::Protection {
                access: Access::Write,
                ..
            })
        ));
    }

    #[test]
    fn nx_disabled_allows_exec_of_data() {
        let mut m = mem_with(0x1000, 1, Perm::RW);
        assert!(
            m.fetch(0x1000).is_ok(),
            "pre-NX default: data is executable"
        );
        m.nx = true;
        assert!(matches!(
            m.fetch(0x1000),
            Err(Fault::Protection {
                access: Access::Exec,
                ..
            })
        ));
    }

    #[test]
    fn snapshot_is_cow() {
        let mut m = mem_with(0x1000, 4, Perm::RW);
        m.write_u8(0, 0x1000, 7).expect("w");
        let snap = m.snapshot();
        assert_eq!(m.shared_pages(), 4);
        m.write_u8(0, 0x1004, 9).expect("w");
        // The written page was copied; the other three remain shared.
        assert_eq!(m.shared_pages(), 3);
        assert_eq!(
            snap.read_u8(0, 0x1004).expect("r"),
            0,
            "snapshot unaffected"
        );
        assert_eq!(m.read_u8(0, 0x1004).expect("r"), 9);
        assert_eq!(snap.read_u8(0, 0x1000).expect("r"), 7);
    }

    #[test]
    fn region_lookup() {
        let mut m = Mem::new();
        m.map(0x1000, 0x1000, Perm::RX, "code").expect("map");
        m.map(0x8000, 0x2000, Perm::RW, "heap").expect("map");
        assert_eq!(m.region_of(0x1800).map(|r| r.name.as_str()), Some("code"));
        assert_eq!(m.region_of(0x9fff).map(|r| r.name.as_str()), Some("heap"));
        assert!(m.region_of(0x4000).is_none());
        assert_eq!(m.region_of(0x8000).map(|r| r.end()), Some(0xa000));
    }

    #[test]
    fn write_generations_track_mutation() {
        let mut m = mem_with(0x1000, 2, Perm::RW);
        let (p0, p1) = (1u32, 2u32); // page numbers of the two pages
        assert_eq!(m.write_seq(), 0);
        assert_eq!(m.page_gen(p0), 0);
        m.write_u8(0, 0x1000, 1).expect("w");
        assert_eq!(m.write_seq(), 1);
        assert_eq!(m.page_gen(p0), 1);
        assert_eq!(m.page_gen(p1), 0, "untouched page keeps its gen");
        m.write_u32(0, 0x2000, 5).expect("w");
        assert_eq!(m.write_seq(), 5, "u32 = four byte writes");
        assert_eq!(m.page_gen(p1), 5);
        // Host injection bumps too (shellcode planting must invalidate).
        m.write_bytes_host(0x1000, b"ab").expect("w");
        assert_eq!(m.page_gen(p0), 7);
        // Snapshots carry generations; failed writes don't bump.
        let snap = m.snapshot();
        assert_eq!(snap.page_gen(p0), m.page_gen(p0));
        assert!(m.write_u8(0, 0x9000, 1).is_err());
        assert_eq!(m.write_seq(), 7);
    }

    #[test]
    fn page_queries_mirror_fetch_permissions() {
        let mut m = Mem::new();
        m.map(0x1000, 0x1000, Perm::RX, "code").expect("map");
        m.map(0x2000, 0x1000, Perm::RW, "data").expect("map");
        assert!(m.page_exec_ok(1));
        assert!(m.page_exec_ok(2), "pre-NX: readable implies executable");
        assert!(!m.page_exec_ok(9), "unmapped");
        m.nx = true;
        assert!(m.page_exec_ok(1));
        assert!(!m.page_exec_ok(2), "NX forbids data exec");
        assert!(m.page_bytes(1).is_some());
        assert!(m.page_bytes(9).is_none());
    }

    #[test]
    fn dirty_iteration_capture_and_rebuild_roundtrip() {
        let mut m = mem_with(0x1000, 3, Perm::RW);
        m.write_u8(0, 0x1000, 1).expect("w");
        let watermark = m.write_seq();
        m.write_u8(0, 0x2000, 2).expect("w");
        m.write_u32(0, 0x3000, 3).expect("w");
        // Only the two pages written past the watermark show up.
        let dirty: Vec<(u32, u64)> = m.dirty_pages_since(watermark).collect();
        assert_eq!(dirty.iter().map(|(p, _)| *p).collect::<Vec<_>>(), [2, 3]);
        assert!(dirty.iter().all(|(p, g)| *g == m.page_gen(*p)));
        assert_eq!(m.dirty_pages_since(m.write_seq()).count(), 0);
        assert_eq!(m.page_table().count(), m.mapped_pages());
        // Rebuild from skeleton + captured pages: bit-identical.
        let mut rebuilt = m.skeleton();
        assert_eq!(rebuilt.mapped_pages(), 0, "skeleton has no pages");
        assert_eq!(rebuilt.write_seq(), m.write_seq());
        for (pno, _) in m.page_table() {
            let (arc, gen) = m.page_arc(pno).expect("mapped");
            rebuilt.restore_page(pno, arc, gen);
        }
        for (pno, gen) in m.page_table() {
            assert_eq!(rebuilt.page_gen(pno), gen);
            assert_eq!(rebuilt.page_bytes(pno), m.page_bytes(pno));
        }
        assert_eq!(rebuilt.regions(), m.regions());
        // Restored pages share storage COW-style: a write to the origin
        // copies first and leaves the rebuilt view untouched.
        m.write_u8(0, 0x1004, 9).expect("w");
        assert_eq!(rebuilt.read_u8(0, 0x1004).expect("r"), 0);
    }

    #[test]
    fn cstr_reading_is_bounded() {
        let mut m = mem_with(0x1000, 1, Perm::RW);
        m.write_bytes_host(0x1000, b"hi\0there").expect("w");
        assert_eq!(m.read_cstr(0x1000, 64).expect("r"), b"hi");
        assert_eq!(m.read_cstr(0x1003, 3).expect("r"), b"the", "bounded");
    }
}
