//! Virtual time: a deterministic cycle counter with a cost model.
//!
//! The paper reports wall-clock numbers from a 2.4 GHz Pentium 4. Our
//! substrate is an interpreter, so absolute times are meaningless; instead
//! every guest-visible cost (instructions, syscalls, checkpoint copies,
//! instrumentation) is charged in *virtual cycles* and converted to seconds
//! at 2.4 GHz. This makes throughput/overhead experiments (Figures 4 and 5)
//! deterministic and lets instrumentation overheads be modelled with the
//! paper's reported multipliers (20x-1000x).

/// Virtual clock rate, matching the paper's 2.4 GHz Pentium 4.
pub const CYCLES_PER_SEC: u64 = 2_400_000_000;

/// Cost model constants (virtual cycles).
pub mod cost {
    /// Base cost of one interpreted instruction.
    pub const INSN: u64 = 1;
    /// Extra cost of a memory access instruction.
    pub const MEM: u64 = 2;
    /// Fixed syscall entry cost.
    pub const SYSCALL: u64 = 400;
    /// Per-byte cost of `read`/`write` syscalls.
    pub const IO_BYTE: u64 = 4;
    /// Cost of an `alloc`/`free` runtime call (list walk excluded).
    pub const ALLOC: u64 = 120;
    /// Cost of copying one page on checkpoint COW or snapshot.
    pub const PAGE_COPY: u64 = 3000;
    /// Fixed cost of taking a checkpoint — the `fork()`-like page-table
    /// copy of a production-sized server. Calibrated to the paper's
    /// Figure 4: ~5% throughput loss at a 30 ms interval and ~0.9% at
    /// 200 ms implies roughly 1.5 ms of work per checkpoint.
    pub const CHECKPOINT_BASE: u64 = 2_400_000;
    /// Fixed cost of taking an *incremental* checkpoint: stamping the
    /// delta record and folding the pre-copy drain's pending pages —
    /// no page-table walk, no full `fork()`-like copy. Calibrated so a
    /// 200 ms cadence costs ~0.05% of the service path before page
    /// copies, an order of magnitude under [`CHECKPOINT_BASE`].
    pub const CHECKPOINT_DELTA: u64 = 240_000;
    /// Fixed cost of a rollback (context-switch-like reinstatement).
    pub const ROLLBACK: u64 = 30_000;
    /// Per-connection network round-trip latency charged by the proxy.
    pub const NET_RTT: u64 = 240_000; // 100 microseconds.
}

/// A monotone virtual cycle counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Clock {
    cycles: u64,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Clock {
        Clock { cycles: 0 }
    }

    /// Advance by `c` cycles.
    pub fn tick(&mut self, c: u64) {
        self.cycles = self.cycles.saturating_add(c);
    }

    /// Total elapsed cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Elapsed virtual time in seconds.
    pub fn seconds(&self) -> f64 {
        self.cycles as f64 / CYCLES_PER_SEC as f64
    }

    /// Elapsed virtual time in milliseconds.
    pub fn millis(&self) -> f64 {
        self.seconds() * 1e3
    }

    /// Elapsed virtual time in whole microseconds (guest `time` syscall).
    pub fn micros(&self) -> u64 {
        self.cycles / (CYCLES_PER_SEC / 1_000_000)
    }
}

/// Convert cycles to seconds at the model clock rate.
pub fn cycles_to_secs(c: u64) -> f64 {
    c as f64 / CYCLES_PER_SEC as f64
}

/// Convert seconds to cycles at the model clock rate.
pub fn secs_to_cycles(s: f64) -> u64 {
    (s * CYCLES_PER_SEC as f64) as u64
}

/// Host-side interpreter throughput: instructions retired per wall-clock
/// second. Returns 0.0 for a degenerate (non-positive) elapsed time so
/// callers never divide by zero. This is the number the decode-cache
/// benchmarks and `tables benchjson` report — it measures the *host*
/// dispatch loop, unlike everything else in this module which is about
/// deterministic *virtual* time.
pub fn insns_per_sec(insns: u64, wall_secs: f64) -> f64 {
    if wall_secs > 0.0 {
        insns as f64 / wall_secs
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ticking_accumulates() {
        let mut c = Clock::new();
        c.tick(100);
        c.tick(CYCLES_PER_SEC);
        assert_eq!(c.cycles(), CYCLES_PER_SEC + 100);
        assert!((c.seconds() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn saturates_instead_of_wrapping() {
        let mut c = Clock::new();
        c.tick(u64::MAX);
        c.tick(10);
        assert_eq!(c.cycles(), u64::MAX);
    }

    #[test]
    fn insns_per_sec_is_total_over_time() {
        assert!((insns_per_sec(2_000_000, 2.0) - 1_000_000.0).abs() < 1e-6);
        assert_eq!(insns_per_sec(123, 0.0), 0.0);
        assert_eq!(insns_per_sec(123, -1.0), 0.0);
    }

    #[test]
    fn conversions_roundtrip() {
        let cyc = secs_to_cycles(0.25);
        assert!((cycles_to_secs(cyc) - 0.25).abs() < 1e-9);
        let mut c = Clock::new();
        c.tick(CYCLES_PER_SEC / 1000);
        assert_eq!(c.micros(), 1000);
        assert!((c.millis() - 1.0).abs() < 1e-9);
    }
}
