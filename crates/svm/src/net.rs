//! Guest-visible networking: connections, input queues, output capture.
//!
//! The host (Sweeper's network proxy) enqueues whole connections; the guest
//! `accept`s, `read`s, and `write`s them. Every byte read is tagged with
//! its offset in the connection's input stream so that instrumentation
//! (taint analysis) can map sink violations back to the responsible input
//! bytes — the paper's route from exploit to input signature.

use std::collections::VecDeque;

/// A single guest connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conn {
    /// Connection id as seen by the guest.
    pub id: u32,
    /// Full input stream supplied by the proxy.
    pub input: Vec<u8>,
    /// How many input bytes the guest has consumed.
    pub read_pos: usize,
    /// Whether the client half is closed (EOF after `input` drains).
    pub eof: bool,
    /// Bytes the guest has written back.
    pub output: Vec<u8>,
    /// Whether the guest closed the connection.
    pub closed: bool,
}

/// What a blocked guest is waiting on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// `accept` with no pending connection.
    Accept,
    /// `read` on a connection with no data yet (and no EOF).
    Read {
        /// The connection being read.
        conn: u32,
    },
}

/// Host-side network endpoint state.
#[derive(Debug, Clone, Default)]
pub struct NetState {
    conns: Vec<Conn>,
    pending_accept: VecDeque<u32>,
    /// Captured `log` syscall output (host diagnostics channel).
    pub log: Vec<u8>,
}

impl NetState {
    /// An endpoint with no connections.
    pub fn new() -> NetState {
        NetState::default()
    }

    /// Enqueue a new client connection carrying `input`; returns its id.
    pub fn push_connection(&mut self, input: Vec<u8>) -> u32 {
        let id = self.conns.len() as u32;
        self.conns.push(Conn {
            id,
            input,
            read_pos: 0,
            eof: true,
            output: Vec::new(),
            closed: false,
        });
        self.pending_accept.push_back(id);
        id
    }

    /// Enqueue a connection that stays open (more data may be appended).
    pub fn push_streaming_connection(&mut self, input: Vec<u8>) -> u32 {
        let id = self.push_connection(input);
        self.conns[id as usize].eof = false;
        id
    }

    /// Append data to an open streaming connection.
    pub fn append_input(&mut self, conn: u32, data: &[u8]) -> Result<(), String> {
        let c = self.conn_mut(conn)?;
        if c.eof {
            return Err(format!("connection {conn} already at EOF"));
        }
        c.input.extend_from_slice(data);
        Ok(())
    }

    /// Mark a streaming connection's client half closed.
    pub fn shutdown_input(&mut self, conn: u32) -> Result<(), String> {
        self.conn_mut(conn)?.eof = true;
        Ok(())
    }

    /// Guest `accept`: the next pending connection id, if any.
    pub fn accept(&mut self) -> Option<u32> {
        self.pending_accept.pop_front()
    }

    /// Whether any connection is waiting to be accepted.
    pub fn has_pending(&self) -> bool {
        !self.pending_accept.is_empty()
    }

    /// Guest `read`: up to `len` bytes. `Ok(None)` means would-block.
    ///
    /// Returns the data along with the stream offset of its first byte.
    pub fn read(&mut self, conn: u32, len: usize) -> Result<Option<(usize, Vec<u8>)>, String> {
        let c = self.conn_mut(conn)?;
        if c.closed {
            return Err(format!("read on closed connection {conn}"));
        }
        let avail = c.input.len() - c.read_pos;
        if avail == 0 {
            return if c.eof {
                Ok(Some((c.read_pos, Vec::new())))
            } else {
                Ok(None)
            };
        }
        let n = avail.min(len);
        let off = c.read_pos;
        let data = c.input[off..off + n].to_vec();
        c.read_pos += n;
        Ok(Some((off, data)))
    }

    /// Guest `write`: append to the connection's output capture.
    pub fn write(&mut self, conn: u32, data: &[u8]) -> Result<usize, String> {
        let c = self.conn_mut(conn)?;
        if c.closed {
            return Err(format!("write on closed connection {conn}"));
        }
        c.output.extend_from_slice(data);
        Ok(data.len())
    }

    /// Guest `close`.
    pub fn close(&mut self, conn: u32) -> Result<(), String> {
        self.conn_mut(conn)?.closed = true;
        Ok(())
    }

    /// Inspect a connection.
    pub fn conn(&self, conn: u32) -> Option<&Conn> {
        self.conns.get(conn as usize)
    }

    /// All connections.
    pub fn conns(&self) -> &[Conn] {
        &self.conns
    }

    /// Drop every connection with id >= `len`, including any still
    /// waiting in the accept queue. Rollback-domain recovery uses this
    /// to truncate the endpoint back to a service boundary without
    /// disturbing the (already-served) earlier connections.
    pub fn truncate_conns(&mut self, len: usize) {
        self.conns.truncate(len);
        self.pending_accept.retain(|&id| (id as usize) < len);
    }

    /// Total bytes written by the guest across all connections.
    pub fn total_output(&self) -> usize {
        self.conns.iter().map(|c| c.output.len()).sum()
    }

    fn conn_mut(&mut self, conn: u32) -> Result<&mut Conn, String> {
        self.conns
            .get_mut(conn as usize)
            .ok_or_else(|| format!("bad connection id {conn}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_fifo_order() {
        let mut n = NetState::new();
        let a = n.push_connection(b"a".to_vec());
        let b = n.push_connection(b"b".to_vec());
        assert_eq!(n.accept(), Some(a));
        assert_eq!(n.accept(), Some(b));
        assert_eq!(n.accept(), None);
    }

    #[test]
    fn read_tracks_stream_offsets() {
        let mut n = NetState::new();
        let c = n.push_connection(b"hello world".to_vec());
        let (off1, d1) = n.read(c, 5).expect("ok").expect("data");
        assert_eq!((off1, d1.as_slice()), (0, b"hello".as_slice()));
        let (off2, d2) = n.read(c, 100).expect("ok").expect("data");
        assert_eq!((off2, d2.as_slice()), (5, b" world".as_slice()));
        // EOF: empty read.
        let (_, d3) = n.read(c, 10).expect("ok").expect("eof");
        assert!(d3.is_empty());
    }

    #[test]
    fn streaming_connection_blocks_then_delivers() {
        let mut n = NetState::new();
        let c = n.push_streaming_connection(Vec::new());
        assert_eq!(n.read(c, 10).expect("ok"), None, "would block");
        n.append_input(c, b"xy").expect("append");
        let (_, d) = n.read(c, 10).expect("ok").expect("data");
        assert_eq!(d, b"xy");
        n.shutdown_input(c).expect("shutdown");
        let (_, d2) = n.read(c, 10).expect("ok").expect("eof");
        assert!(d2.is_empty());
        assert!(n.append_input(c, b"z").is_err(), "no append after EOF");
    }

    #[test]
    fn closed_connection_rejects_io() {
        let mut n = NetState::new();
        let c = n.push_connection(b"x".to_vec());
        n.write(c, b"resp").expect("write");
        n.close(c).expect("close");
        assert!(n.read(c, 1).is_err());
        assert!(n.write(c, b"y").is_err());
        assert_eq!(n.conn(c).expect("conn").output, b"resp");
        assert_eq!(n.total_output(), 4);
    }

    #[test]
    fn bad_ids_are_errors() {
        let mut n = NetState::new();
        assert!(n.read(9, 1).is_err());
        assert!(n.write(9, b"").is_err());
        assert!(n.close(9).is_err());
    }
}
