//! Disassembly: render instructions and code regions as readable text.
//!
//! Used by the forensic reports ("the faulting instruction was
//! `stb [r0, 0], r2` inside `strcat`") and by debugging utilities.

use crate::isa::{AluOp, Cond, Op, Syscall, INSN_SIZE};
use crate::loader::SymbolMap;
use crate::mem::Mem;

fn alu_mnemonic(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::Mul => "mul",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Shl => "shl",
        AluOp::Shr => "shr",
    }
}

fn cond_mnemonic(c: Cond) -> &'static str {
    match c {
        Cond::Eq => "jz",
        Cond::Ne => "jnz",
        Cond::Lt => "jlt",
        Cond::Le => "jle",
        Cond::Gt => "jgt",
        Cond::Ge => "jge",
    }
}

/// Render one instruction in assembler syntax. When `symbols` is given,
/// absolute branch targets are annotated with their symbol.
pub fn render(op: &Op, symbols: Option<&SymbolMap>) -> String {
    let sym = |addr: u32| -> String {
        match symbols {
            Some(map) => map.render(addr),
            None => format!("{addr:#010x}"),
        }
    };
    match *op {
        Op::Nop => "nop".into(),
        Op::Halt => "halt".into(),
        Op::MovI { rd, imm } => format!("movi {rd}, {imm:#x}"),
        Op::Mov { rd, rs } => format!("mov {rd}, {rs}"),
        Op::Ld { rd, rs, off } => format!("ld {rd}, [{rs}, {off}]"),
        Op::St { rd, rs, off } => format!("st [{rd}, {off}], {rs}"),
        Op::LdB { rd, rs, off } => format!("ldb {rd}, [{rs}, {off}]"),
        Op::StB { rd, rs, off } => format!("stb [{rd}, {off}], {rs}"),
        Op::Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", alu_mnemonic(op)),
        Op::AluI { op, rd, rs1, imm } => format!("{}i {rd}, {rs1}, {imm}", alu_mnemonic(op)),
        Op::Cmp { rs1, rs2 } => format!("cmp {rs1}, {rs2}"),
        Op::CmpI { rs1, imm } => format!("cmpi {rs1}, {imm:#x}"),
        Op::Jmp { target } => format!("jmp {}", sym(target)),
        Op::JCond { cond, target } => format!("{} {}", cond_mnemonic(cond), sym(target)),
        Op::JmpR { rs } => format!("jmpr {rs}"),
        Op::Call { target } => format!("call {}", sym(target)),
        Op::CallR { rs } => format!("callr {rs}"),
        Op::Ret => "ret".into(),
        Op::Push { rs } => format!("push {rs}"),
        Op::Pop { rd } => format!("pop {rd}"),
        Op::Sys { num } => match Syscall::from_num(num) {
            Some(Syscall::Exit) => "sys exit".into(),
            Some(Syscall::Accept) => "sys accept".into(),
            Some(Syscall::Read) => "sys read".into(),
            Some(Syscall::Write) => "sys write".into(),
            Some(Syscall::Close) => "sys close".into(),
            Some(Syscall::Alloc) => "sys alloc".into(),
            Some(Syscall::Free) => "sys free".into(),
            Some(Syscall::Time) => "sys time".into(),
            Some(Syscall::Rand) => "sys rand".into(),
            Some(Syscall::Log) => "sys log".into(),
            None => format!("sys {num:#x} (?)"),
        },
    }
}

/// One disassembled line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Instruction address.
    pub addr: u32,
    /// Decoded instruction, if the bytes decode.
    pub op: Option<Op>,
    /// Rendered text (`<bad opcode 0x..>` for undecodable words).
    pub text: String,
}

/// Disassemble `count` instructions starting at `addr`.
///
/// Stops early at unmapped memory. Undecodable words become explicit
/// `<bad opcode>` lines rather than errors — a disassembler must be able
/// to walk attacker-corrupted code.
pub fn disasm(mem: &Mem, symbols: Option<&SymbolMap>, addr: u32, count: usize) -> Vec<DisasmLine> {
    let mut out = Vec::new();
    let mut pc = addr;
    for _ in 0..count {
        let Ok(word) = mem.fetch(pc) else { break };
        let line = match Op::decode(word, pc) {
            Ok(op) => DisasmLine {
                addr: pc,
                op: Some(op),
                text: render(&op, symbols),
            },
            Err(_) => DisasmLine {
                addr: pc,
                op: None,
                text: format!("<bad opcode {:#04x}>", word[0]),
            },
        };
        out.push(line);
        pc = pc.wrapping_add(INSN_SIZE);
    }
    out
}

/// Render a window of instructions around a faulting pc, marking it —
/// the forensic "crash context" view.
pub fn crash_context(
    mem: &Mem,
    symbols: &SymbolMap,
    fault_pc: u32,
    before: usize,
    after: usize,
) -> String {
    let start = fault_pc.wrapping_sub((before as u32) * INSN_SIZE);
    let mut s = String::new();
    for line in disasm(mem, Some(symbols), start, before + 1 + after) {
        let marker = if line.addr == fault_pc { "=> " } else { "   " };
        s.push_str(&format!(
            "{marker}{}: {}\n",
            symbols.render(line.addr),
            line.text
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::isa::Reg;
    use crate::loader::{load, Layout};

    #[test]
    fn renders_every_form() {
        let cases = [
            (Op::Nop, "nop"),
            (
                Op::MovI {
                    rd: Reg(3),
                    imm: 255,
                },
                "movi r3, 0xff",
            ),
            (
                Op::Ld {
                    rd: Reg(1),
                    rs: Reg::FP,
                    off: -8,
                },
                "ld r1, [fp, -8]",
            ),
            (
                Op::StB {
                    rd: Reg(2),
                    rs: Reg(3),
                    off: 4,
                },
                "stb [r2, 4], r3",
            ),
            (
                Op::Alu {
                    op: AluOp::Xor,
                    rd: Reg(0),
                    rs1: Reg(1),
                    rs2: Reg(2),
                },
                "xor r0, r1, r2",
            ),
            (
                Op::AluI {
                    op: AluOp::Add,
                    rd: Reg(0),
                    rs1: Reg(0),
                    imm: -4,
                },
                "addi r0, r0, -4",
            ),
            (
                Op::JCond {
                    cond: Cond::Ne,
                    target: 0x40,
                },
                "jnz 0x00000040",
            ),
            (
                Op::Sys {
                    num: Syscall::Read.num(),
                },
                "sys read",
            ),
            (Op::Ret, "ret"),
        ];
        for (op, want) in cases {
            assert_eq!(render(&op, None), want);
        }
    }

    #[test]
    fn disasm_walks_real_code_with_symbols() {
        let prog = assemble(".text\nmain:\n movi r0, 5\n call helper\n halt\nhelper:\n ret\n")
            .expect("asm");
        let img = load(&prog, Layout::nominal()).expect("load");
        let lines = disasm(&img.mem, Some(&img.symbols), img.entry, 4);
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0].text, "movi r0, 0x5");
        assert!(lines[1].text.contains("(helper)"), "{}", lines[1].text);
        assert_eq!(lines[2].text, "halt");
        assert_eq!(lines[3].text, "ret");
    }

    #[test]
    fn disasm_survives_garbage_and_unmapped() {
        let prog = assemble(".text\nmain:\n halt\n.data\njunk: .byte 0xff, 1, 2, 3, 4, 5, 6, 7\n")
            .expect("asm");
        let img = load(&prog, Layout::nominal()).expect("load");
        let junk = img.symbols.addr_of("junk").expect("junk");
        let lines = disasm(&img.mem, None, junk, 2);
        assert!(lines[0].text.starts_with("<bad opcode"));
        // Unmapped start yields nothing rather than panicking.
        assert!(disasm(&img.mem, None, 0x6666_0000, 4).is_empty());
    }

    #[test]
    fn crash_context_marks_the_fault() {
        let prog = assemble(".text\nmain:\n movi r0, 1\n movi r1, 2\n halt\n").expect("asm");
        let img = load(&prog, Layout::nominal()).expect("load");
        let ctx = crash_context(&img.mem, &img.symbols, img.entry + 8, 1, 1);
        let lines: Vec<&str> = ctx.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("=> "));
        assert!(lines[1].contains("movi r1"));
    }
}
