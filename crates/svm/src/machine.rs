//! The virtual machine: fetch/decode/execute loop, syscalls, and status.
//!
//! The machine is a plain value: cloning it (cheaply, thanks to COW pages)
//! *is* a checkpoint, and assigning a clone back *is* a rollback. The
//! `checkpoint` crate wraps this with interval policy, input logging, and
//! replay; here we only guarantee deterministic, fault-containing
//! execution.

use crate::alloc::HeapState;
use crate::asm::Program;
use crate::clock::{cost, Clock};
use crate::cpu::Cpu;
use crate::error::{Fault, SvmError};
use crate::hook::{Hook, NopHook};
use crate::icache::{CacheStats, DecodeCache};
use crate::isa::{Op, Reg, Syscall, INSN_SIZE};
use crate::loader::{self, Aslr, Layout, SymbolMap};
use crate::mem::Mem;
use crate::net::{BlockedOn, NetState};
use crate::rng::XorShift64;
use crate::superblock::{SbCache, SbCtx, SbStats};

/// Execution status after a step or run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// More instructions to run.
    Running,
    /// The guest executed `halt` or `sys exit`; code in the payload.
    Halted(u32),
    /// The guest is blocked on network input.
    Blocked(BlockedOn),
    /// The guest faulted; the machine is frozen at the faulting state.
    Faulted(Fault),
}

impl Status {
    /// Whether the machine can make further progress without host action.
    pub fn is_running(&self) -> bool {
        matches!(self, Status::Running)
    }
}

/// A loaded guest process.
#[derive(Clone)]
pub struct Machine {
    /// Architectural registers.
    pub cpu: Cpu,
    /// Paged address space.
    pub mem: Mem,
    /// Heap allocator state (metadata itself lives in `mem`).
    pub heap: HeapState,
    /// Network endpoint.
    pub net: NetState,
    /// Deterministic guest RNG.
    pub rng: XorShift64,
    /// Virtual clock.
    pub clock: Clock,
    /// Chosen address-space layout.
    pub layout: Layout,
    /// Symbol map for diagnostics (shared, not mutated).
    pub symbols: SymbolMap,
    /// Count of executed instructions.
    pub insns_retired: u64,
    /// Count of executed syscall instructions (including blocked
    /// retries, which re-enter the kernel model each attempt).
    pub syscalls_retired: u64,
    status: Status,
    /// Predecoded-page instruction cache (cold after any clone, so
    /// checkpoints and rollbacks never inherit decode state).
    icache: DecodeCache,
    /// Superblock cache, the execution tier above the decode cache
    /// (also cold after any clone). The machine holds no other hook
    /// state: whether the superblock fast path may run is re-derived
    /// from `Hook::is_passive` on every dispatch, never cached, so a
    /// clone whose hook goes live before its first step still delivers
    /// its very first instruction to that hook.
    sblocks: SbCache,
}

impl Machine {
    /// Load `prog` under the given randomization policy.
    pub fn boot(prog: &Program, aslr: Aslr) -> Result<Machine, SvmError> {
        let layout = Layout::randomized(aslr);
        Machine::boot_with_layout(prog, layout)
    }

    /// Load `prog` at an explicit layout (used to model an attacker's
    /// assumed layout or a lucky guess).
    pub fn boot_with_layout(prog: &Program, layout: Layout) -> Result<Machine, SvmError> {
        let img = loader::load(prog, layout)?;
        let mut cpu = Cpu::new();
        cpu.pc = img.entry;
        cpu.set(Reg::SP, img.initial_sp);
        cpu.set(Reg::FP, img.initial_sp);
        Ok(Machine {
            cpu,
            mem: img.mem,
            heap: HeapState::new(layout.heap_base, layout.heap_size),
            net: NetState::new(),
            rng: XorShift64::new(0x5eed ^ layout.code_base as u64),
            clock: Clock::new(),
            layout,
            symbols: img.symbols,
            insns_retired: 0,
            syscalls_retired: 0,
            status: Status::Running,
            icache: DecodeCache::new(true),
            sblocks: SbCache::new(true),
        })
    }

    /// Current status.
    pub fn status(&self) -> Status {
        self.status
    }

    /// Restore a previously captured status verbatim.
    ///
    /// Recovery support: partial (domain) rollback rebuilds a machine
    /// from a faulted live image plus a captured service boundary, and
    /// must be able to clear the `Faulted` latch back to the boundary's
    /// blocked-on-accept state. Not for general use — ordinary code
    /// transitions status through execution and [`Machine::unblock`].
    pub fn restore_status(&mut self, status: Status) {
        self.status = status;
    }

    /// Builder-style decode-cache knob: `boot(..)?.with_decode_cache(false)`
    /// yields the pre-cache interpreter (useful for differential parity
    /// testing and the `vm_decode_cache` benchmarks). The cache is **on**
    /// by default and is bit-identical to the slow path by construction.
    ///
    /// The knob selects the whole accelerated stack: it also sets the
    /// superblock tier, so `false` drops to the pure word-at-a-time
    /// interpreter. Refine with [`Machine::with_superblocks`] *after*
    /// this call for the icache-only middle tier.
    pub fn with_decode_cache(mut self, enabled: bool) -> Machine {
        self.set_decode_cache(enabled);
        self
    }

    /// Enable/disable the predecoded instruction cache in place (also
    /// sets the superblock tier; see [`Machine::with_decode_cache`]).
    pub fn set_decode_cache(&mut self, enabled: bool) {
        self.icache.set_enabled(enabled);
        self.sblocks.set_enabled(enabled);
    }

    /// Whether the predecoded instruction cache is enabled.
    pub fn decode_cache_enabled(&self) -> bool {
        self.icache.enabled()
    }

    /// Builder-style superblock-tier knob, applied on top of the decode
    /// cache: `with_decode_cache(true).with_superblocks(false)` is the
    /// icache-only middle tier. The tier is **on** by default and is
    /// bit-identical to per-instruction execution by construction.
    pub fn with_superblocks(mut self, enabled: bool) -> Machine {
        self.sblocks.set_enabled(enabled);
        self
    }

    /// Enable/disable the superblock tier in place.
    pub fn set_superblocks(&mut self, enabled: bool) {
        self.sblocks.set_enabled(enabled);
    }

    /// Whether the superblock execution tier is enabled.
    pub fn superblocks_enabled(&self) -> bool {
        self.sblocks.enabled()
    }

    /// Hit/miss/invalidation counters of the decode cache.
    ///
    /// Deliberately excludes superblock-tier activity: both tiers
    /// observe the same dirtying events (a rollback flush and a
    /// write-generation bump to the same page in one step, say), and a
    /// merged counter would double-count that single event. Use
    /// [`Machine::superblock_stats`] for the tier-2 counters.
    pub fn icache_stats(&self) -> CacheStats {
        self.icache.stats()
    }

    /// Dispatch/retire/invalidation counters of the superblock tier
    /// (kept separate from [`Machine::icache_stats`]; see there).
    pub fn superblock_stats(&self) -> SbStats {
        self.sblocks.stats()
    }

    /// Export this machine's execution counters into an
    /// [`obs::MetricsRegistry`] under the `svm.` prefix.
    ///
    /// Counters are written as absolute values (`set_counter`), so
    /// repeated exports of the same machine never double-count. The
    /// hot interpreter loop keeps its plain `u64` fields; this is the
    /// only point where they meet the registry.
    pub fn export_metrics(&self, reg: &mut obs::MetricsRegistry) {
        reg.set_counter("svm.insns_retired", self.insns_retired);
        reg.set_counter("svm.syscalls_retired", self.syscalls_retired);
        reg.set_counter("svm.cycles", self.clock.cycles());
        let st = self.icache.stats();
        reg.set_counter("svm.icache.hits", st.hits);
        reg.set_counter("svm.icache.misses", st.misses);
        reg.set_counter("svm.icache.invalidations", st.invalidations);
        reg.set_counter("svm.icache.bypasses", st.bypasses);
        reg.set_counter("svm.icache.flushes", st.flushes);
        let sb = self.sblocks.stats();
        reg.set_counter("svm.superblock.built", sb.built);
        reg.set_counter("svm.superblock.dispatches", sb.dispatches);
        reg.set_counter("svm.superblock.insns", sb.insns);
        reg.set_counter("svm.superblock.invalidations", sb.invalidations);
        reg.set_counter("svm.superblock.bailouts", sb.bailouts);
        reg.set_counter("svm.superblock.bypasses", sb.bypasses);
        reg.set_counter("svm.superblock.flushes", sb.flushes);
        reg.set_counter("svm.mem.write_seq", self.mem.write_seq());
        reg.set_counter("svm.heap.allocs", self.heap.allocs);
        reg.set_counter("svm.heap.frees", self.heap.frees);
        let mapped = self.mem.mapped_pages();
        let shared = self.mem.shared_pages();
        reg.gauge("svm.mem.mapped_pages", mapped as f64);
        // Pages private to this machine, i.e. dirtied (unshared from the
        // last checkpoint's COW pages) since the last snapshot.
        reg.gauge(
            "svm.mem.private_pages",
            mapped.saturating_sub(shared) as f64,
        );
    }

    /// Drop every predecoded page *and* every compiled superblock.
    ///
    /// Required after any out-of-band replacement of this machine's
    /// memory or layout (checkpoint restore does this via `Clone`, which
    /// is already cold; call it explicitly if you swap `mem` by hand).
    /// Both tiers flush together so rollback can never leave stale fused
    /// blocks behind a fresh decode cache; each tier records the flush
    /// in its *own* stats (count-once: one event, one counter per tier,
    /// never summed — see [`Machine::icache_stats`]).
    pub fn flush_decode_cache(&mut self) {
        self.icache.flush();
        self.sblocks.flush();
    }

    /// Clear a `Blocked` status so stepping retries the blocked syscall
    /// (call after supplying input).
    pub fn unblock(&mut self) {
        if matches!(self.status, Status::Blocked(_)) {
            self.status = Status::Running;
        }
    }

    /// Execute one instruction without instrumentation.
    pub fn step(&mut self) -> Status {
        self.step_hooked(&mut NopHook)
    }

    /// Execute one instruction, delivering events to `hook`.
    pub fn step_hooked(&mut self, hook: &mut dyn Hook) -> Status {
        match self.status {
            Status::Running => {}
            s @ (Status::Halted(_) | Status::Faulted(_)) => return s,
            Status::Blocked(_) => return self.status, // Host must unblock.
        }
        let pc = self.cpu.pc;
        let status = match self.exec_one(pc, hook) {
            Ok(s) => s,
            Err(f) => Status::Faulted(f),
        };
        self.status = status;
        status
    }

    /// Run until the status leaves `Running` or `max_cycles` elapse.
    ///
    /// Returns the final status; on cycle exhaustion the status remains
    /// `Running` (the machine is preemptible).
    ///
    /// While the hook reports itself passive, whole superblocks are
    /// dispatched through the tier-2 fast path (`svm::superblock`);
    /// liveness is re-checked before *every* dispatch — never cached on
    /// the machine — so a tool attached mid-execution (or on a fresh
    /// clone) observes every subsequent instruction through the
    /// per-instruction path below. Superblock execution is bit-identical
    /// to per-instruction execution: same state, faults, cycle
    /// accounting, and preemption points.
    pub fn run(&mut self, hook: &mut dyn Hook, max_cycles: u64) -> Status {
        let deadline = self.clock.cycles().saturating_add(max_cycles);
        // Superblock entries are control-transfer targets by
        // construction (blocks end at terminators), so the cache is
        // probed at the start of the run and after every non-sequential
        // pc move. Sequentially-advancing stretches — exactly the runs
        // the tier declined to fuse — skip the probe per instruction
        // instead of paying a guaranteed miss on every step.
        let mut at_entry = true;
        // The entry the tier most recently declined, valid while the
        // memory write sequence is unchanged (identical memory means an
        // identical answer). A branch-dense loop whose short body the
        // tier hands back therefore runs at full icache speed instead
        // of re-probing its entry every iteration. Skipping a probe is
        // always safe: it only means the per-instruction path runs.
        let mut no_fuse: Option<(u32, u64)> = None;
        loop {
            let probe = at_entry
                && self.status.is_running()
                && self.sblocks.enabled()
                && hook.is_passive()
                && no_fuse != Some((self.cpu.pc, self.mem.write_seq()));
            if probe {
                if self.exec_superblock(deadline) {
                    if !self.status.is_running() || self.clock.cycles() >= deadline {
                        return self.status;
                    }
                    continue;
                }
                no_fuse = Some((self.cpu.pc, self.mem.write_seq()));
            }
            let pre = self.cpu.pc;
            let s = self.step_hooked(hook);
            if !s.is_running() || self.clock.cycles() >= deadline {
                return s;
            }
            at_entry = self.cpu.pc != pre.wrapping_add(INSN_SIZE);
        }
    }

    /// Dispatch one superblock at the current pc. Returns `false` when
    /// the tier has nothing to offer here (no block, terminator at the
    /// entry, bypass) and the caller should take one per-instruction
    /// step instead. On `true`, at least one instruction was retired and
    /// the machine state (cpu, clock, counters, status) is exactly what
    /// per-instruction execution of the same run would have produced.
    fn exec_superblock(&mut self, deadline: u64) -> bool {
        let entry = self.cpu.pc;
        let Some(blk) = self.sblocks.lookup(&self.mem, &self.layout, entry) else {
            return false;
        };
        let mut ctx = SbCtx {
            regs: self.cpu.regs,
            flags: self.cpu.flags,
            mem: &mut self.mem,
            clock: &mut self.clock,
            pc: entry,
            stack_base: self.layout.stack_top - self.layout.stack_size,
            stack_top: self.layout.stack_top,
        };
        let mut retired = 0u64;
        let mut done = 0u32;
        let mut fault: Option<Fault> = None;
        let mut bailed = false;
        for op in blk.ops.iter() {
            ctx.pc = entry + done * INSN_SIZE;
            retired += 1;
            ctx.clock.tick(cost::INSN);
            match op(&mut ctx) {
                Ok(stored) => {
                    done += 1;
                    // Self-modifying code: if the store dirtied the
                    // block's own page, the remaining fused ops may be
                    // stale — commit and bail to the interpreter, which
                    // (re)validates lazily, exactly like the icache.
                    if stored && ctx.mem.page_gen(blk.pno) != blk.gen {
                        bailed = true;
                        break;
                    }
                    // Same preemption point the interpreter's run loop
                    // checks after every instruction.
                    if ctx.clock.cycles() >= deadline {
                        break;
                    }
                }
                Err(f) => {
                    fault = Some(f);
                    break;
                }
            }
        }
        // Write the locally-cached registers back at the block exit.
        let fault_pc = ctx.pc;
        self.cpu.regs = ctx.regs;
        self.cpu.flags = ctx.flags;
        self.insns_retired += retired;
        match fault {
            // Freeze at the faulting pc with the faulting instruction
            // counted — identical to `exec_one`'s fault semantics.
            Some(f) => {
                self.cpu.pc = fault_pc;
                self.status = Status::Faulted(f);
            }
            None => self.cpu.pc = entry + done * INSN_SIZE,
        }
        self.sblocks.note_dispatch(retired, bailed);
        true
    }

    fn exec_one(&mut self, pc: u32, hook: &mut dyn Hook) -> Result<Status, Fault> {
        // Liveness is re-checked every step: attaching a tool mid-run
        // flips `is_passive` and the loop transparently drops to the
        // fully hooked path below.
        let passive = hook.is_passive();
        // Fast path: serve the decoded op from the predecoded-page
        // cache. Any bypass (disabled, unaligned pc, written/unmapped/
        // non-executable page, undecodable word) falls back to the slow
        // fetch+decode, which raises the precise fault at this pc. Both
        // paths yield bit-identical ops, faults, and cycle accounting.
        let op = match self.icache.lookup(&self.mem, &self.layout, pc) {
            Some(op) => op,
            None => {
                let word = self.mem.fetch(pc)?;
                Op::decode(word, pc)?
            }
        };
        if !passive {
            hook.on_insn(self, pc, &op);
        }
        self.insns_retired += 1;
        self.clock.tick(cost::INSN);
        let mut next_pc = pc.wrapping_add(INSN_SIZE);
        match op {
            Op::Nop => {}
            Op::Halt => return Ok(Status::Halted(self.cpu.get(Reg::R0))),
            Op::MovI { rd, imm } => self.cpu.set(rd, imm),
            Op::Mov { rd, rs } => {
                let v = self.cpu.get(rs);
                self.cpu.set(rd, v);
            }
            Op::Ld { rd, rs, off } => {
                self.clock.tick(cost::MEM);
                let addr = self.cpu.get(rs).wrapping_add(off as u32);
                let v = self.mem.read_u32(pc, addr)?;
                if !passive {
                    hook.on_mem_read(self, pc, addr, 4, v);
                }
                self.cpu.set(rd, v);
            }
            Op::LdB { rd, rs, off } => {
                self.clock.tick(cost::MEM);
                let addr = self.cpu.get(rs).wrapping_add(off as u32);
                let v = self.mem.read_u8(pc, addr)? as u32;
                if !passive {
                    hook.on_mem_read(self, pc, addr, 1, v);
                }
                self.cpu.set(rd, v);
            }
            Op::St { rd, rs, off } => {
                self.clock.tick(cost::MEM);
                let addr = self.cpu.get(rd).wrapping_add(off as u32);
                let v = self.cpu.get(rs);
                if !passive {
                    hook.on_mem_write(self, pc, addr, 4, v);
                }
                self.mem.write_u32(pc, addr, v)?;
            }
            Op::StB { rd, rs, off } => {
                self.clock.tick(cost::MEM);
                let addr = self.cpu.get(rd).wrapping_add(off as u32);
                let v = self.cpu.get(rs) & 0xff;
                if !passive {
                    hook.on_mem_write(self, pc, addr, 1, v);
                }
                self.mem.write_u8(pc, addr, v as u8)?;
            }
            Op::Alu { op, rd, rs1, rs2 } => {
                let a = self.cpu.get(rs1);
                let b = self.cpu.get(rs2);
                self.cpu.set(rd, op.eval(a, b, pc)?);
            }
            Op::AluI { op, rd, rs1, imm } => {
                let a = self.cpu.get(rs1);
                self.cpu.set(rd, op.eval(a, imm as u32, pc)?);
            }
            Op::Cmp { rs1, rs2 } => {
                let (a, b) = (self.cpu.get(rs1), self.cpu.get(rs2));
                self.cpu.flags.set_cmp(a, b);
            }
            Op::CmpI { rs1, imm } => {
                let a = self.cpu.get(rs1);
                self.cpu.flags.set_cmp(a, imm);
            }
            Op::Jmp { target } => next_pc = target,
            Op::JCond { cond, target } => {
                if self.cpu.flags.holds(cond) {
                    next_pc = target;
                }
            }
            Op::JmpR { rs } => next_pc = self.cpu.get(rs),
            Op::Call { target } => {
                next_pc = self.do_call(pc, target, hook, passive)?;
            }
            Op::CallR { rs } => {
                let target = self.cpu.get(rs);
                next_pc = self.do_call(pc, target, hook, passive)?;
            }
            Op::Ret => {
                self.clock.tick(cost::MEM);
                let sp = self.cpu.sp();
                let ret = self.mem.read_u32(pc, sp)?;
                if !passive {
                    hook.on_ret(self, pc, ret, sp);
                }
                self.cpu.set(Reg::SP, sp.wrapping_add(4));
                next_pc = ret;
            }
            Op::Push { rs } => {
                self.clock.tick(cost::MEM);
                let sp = self.cpu.sp().wrapping_sub(4);
                self.check_stack(pc, sp)?;
                let v = self.cpu.get(rs);
                if !passive {
                    hook.on_mem_write(self, pc, sp, 4, v);
                }
                self.mem.write_u32(pc, sp, v)?;
                self.cpu.set(Reg::SP, sp);
            }
            Op::Pop { rd } => {
                self.clock.tick(cost::MEM);
                let sp = self.cpu.sp();
                let v = self.mem.read_u32(pc, sp)?;
                if !passive {
                    hook.on_mem_read(self, pc, sp, 4, v);
                }
                self.cpu.set(rd, v);
                self.cpu.set(Reg::SP, sp.wrapping_add(4));
            }
            Op::Sys { num } => {
                let sc = Syscall::from_num(num).ok_or(Fault::BadOpcode { pc, opcode: num })?;
                match self.do_syscall(pc, sc, hook, passive)? {
                    SysOutcome::Done => {}
                    SysOutcome::Halt(code) => return Ok(Status::Halted(code)),
                    SysOutcome::Block(b) => {
                        // Do not advance the pc: re-stepping after
                        // `unblock()` retries the syscall.
                        return Ok(Status::Blocked(b));
                    }
                }
            }
        }
        self.cpu.pc = next_pc;
        Ok(Status::Running)
    }

    fn do_call(
        &mut self,
        pc: u32,
        target: u32,
        hook: &mut dyn Hook,
        passive: bool,
    ) -> Result<u32, Fault> {
        self.clock.tick(cost::MEM);
        let ret_addr = pc.wrapping_add(INSN_SIZE);
        let sp = self.cpu.sp().wrapping_sub(4);
        self.check_stack(pc, sp)?;
        if !passive {
            hook.on_call(self, pc, target, ret_addr, sp);
        }
        self.mem.write_u32(pc, sp, ret_addr)?;
        self.cpu.set(Reg::SP, sp);
        Ok(target)
    }

    fn check_stack(&self, pc: u32, sp: u32) -> Result<(), Fault> {
        let stack_base = self.layout.stack_top - self.layout.stack_size;
        if sp < stack_base || sp >= self.layout.stack_top {
            return Err(Fault::StackOverflow { pc, sp });
        }
        Ok(())
    }

    fn do_syscall(
        &mut self,
        pc: u32,
        sc: Syscall,
        hook: &mut dyn Hook,
        passive: bool,
    ) -> Result<SysOutcome, Fault> {
        self.clock.tick(cost::SYSCALL);
        self.syscalls_retired += 1;
        let args = [
            self.cpu.get(Reg::R0),
            self.cpu.get(Reg::R1),
            self.cpu.get(Reg::R2),
            self.cpu.get(Reg::R3),
        ];
        let ret: u32 = match sc {
            Syscall::Exit => return Ok(SysOutcome::Halt(args[0])),
            Syscall::Accept => match self.net.accept() {
                Some(id) => {
                    self.clock.tick(cost::NET_RTT);
                    id
                }
                None => return Ok(SysOutcome::Block(BlockedOn::Accept)),
            },
            Syscall::Read => {
                let (conn, buf, len) = (args[0], args[1], args[2]);
                match self.net.read(conn, len as usize) {
                    Ok(Some((off, data))) => {
                        self.clock.tick(cost::IO_BYTE * data.len() as u64);
                        for (i, b) in data.iter().enumerate() {
                            self.mem.write_u8(pc, buf.wrapping_add(i as u32), *b)?;
                        }
                        if !passive {
                            hook.on_input(self, conn, off as u32, buf, &data);
                        }
                        data.len() as u32
                    }
                    Ok(None) => return Ok(SysOutcome::Block(BlockedOn::Read { conn })),
                    Err(_) => u32::MAX, // -1: bad fd or closed.
                }
            }
            Syscall::Write => {
                let (conn, buf, len) = (args[0], args[1], args[2]);
                let data = self.mem.read_bytes(buf, len)?;
                self.clock.tick(cost::IO_BYTE * data.len() as u64);
                match self.net.write(conn, &data) {
                    Ok(n) => n as u32,
                    Err(_) => u32::MAX,
                }
            }
            Syscall::Close => match self.net.close(args[0]) {
                Ok(()) => 0,
                Err(_) => u32::MAX,
            },
            Syscall::Alloc => {
                self.clock.tick(cost::ALLOC);
                let ptr = self.heap.alloc(&mut self.mem, pc, args[0])?;
                if ptr != 0 && !passive {
                    hook.on_alloc(self, pc, args[0], ptr);
                }
                ptr
            }
            Syscall::Free => {
                self.clock.tick(cost::ALLOC);
                let kind = self.heap.free(&mut self.mem, pc, args[0])?;
                if !passive {
                    hook.on_free(self, pc, args[0], kind);
                }
                0
            }
            Syscall::Time => self.clock.micros() as u32,
            Syscall::Rand => self.rng.next_u32(),
            Syscall::Log => {
                let data = self.mem.read_bytes(args[0], args[1])?;
                self.net.log.extend_from_slice(&data);
                args[1]
            }
        };
        self.cpu.set(Reg::R0, ret);
        if !passive {
            hook.on_syscall(self, pc, sc, args, ret);
        }
        Ok(SysOutcome::Done)
    }
}

enum SysOutcome {
    Done,
    Halt(u32),
    Block(BlockedOn),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn boot(src: &str) -> Machine {
        let prog = assemble(src).expect("asm");
        Machine::boot(&prog, Aslr::off()).expect("boot")
    }

    fn run_to_halt(m: &mut Machine) -> u32 {
        match m.run(&mut NopHook, 10_000_000) {
            Status::Halted(code) => code,
            other => panic!("did not halt: {other:?}"),
        }
    }

    #[test]
    fn arithmetic_program() {
        let mut m = boot(".text\nmain:\n movi r0, 6\n movi r1, 7\n mul r0, r0, r1\n halt\n");
        assert_eq!(run_to_halt(&mut m), 42);
    }

    #[test]
    fn export_metrics_mirrors_counters_without_double_counting() {
        let mut m = boot(".text\nmain:\n movi r0, 6\n movi r1, 7\n mul r0, r0, r1\n halt\n");
        run_to_halt(&mut m);
        let mut reg = obs::MetricsRegistry::new();
        m.export_metrics(&mut reg);
        assert_eq!(reg.counter("svm.insns_retired"), m.insns_retired);
        assert_eq!(reg.counter("svm.cycles"), m.clock.cycles());
        // Exporting twice must not double-count (absolute mirror).
        m.export_metrics(&mut reg);
        assert_eq!(reg.counter("svm.insns_retired"), m.insns_retired);
        assert!(reg.gauge_value("svm.mem.mapped_pages").unwrap() > 0.0);
    }

    #[test]
    fn loop_and_memory() {
        // Sum bytes of a string.
        let mut m = boot(
            "
.text
main:
    movi r1, s
    movi r0, 0
loop:
    ldb r2, [r1, 0]
    cmpi r2, 0
    jz done
    add r0, r0, r2
    addi r1, r1, 1
    jmp loop
done:
    halt
.data
s: .string \"abc\"
",
        );
        assert_eq!(run_to_halt(&mut m), b'a' as u32 + b'b' as u32 + b'c' as u32);
    }

    #[test]
    fn call_ret_and_stack() {
        let mut m = boot(
            "
.text
main:
    movi r0, 5
    call double
    call double
    halt
double:
    add r0, r0, r0
    ret
",
        );
        assert_eq!(run_to_halt(&mut m), 20);
    }

    #[test]
    fn division_by_zero_faults() {
        let mut m = boot(".text\nmain:\n movi r0, 4\n movi r1, 0\n div r0, r0, r1\n halt\n");
        match m.run(&mut NopHook, 1000) {
            Status::Faulted(Fault::DivByZero { .. }) => {}
            other => panic!("expected div fault, got {other:?}"),
        }
        // A faulted machine stays faulted.
        assert!(matches!(m.step(), Status::Faulted(_)));
    }

    #[test]
    fn wild_store_faults_and_freezes_state() {
        let mut m = boot(".text\nmain:\n movi r1, 0x600000\n movi r2, 9\n st [r1, 0], r2\n halt\n");
        let pc_before = m.cpu.pc;
        match m.run(&mut NopHook, 1000) {
            Status::Faulted(Fault::Unmapped {
                pc,
                addr: 0x0060_0000,
                ..
            }) => {
                assert_eq!(pc, pc_before + 16, "fault at the store instruction");
            }
            other => panic!("expected segv, got {other:?}"),
        }
        // Registers are frozen at the faulting state for core-dump analysis.
        assert_eq!(m.cpu.get(Reg(2)), 9);
    }

    #[test]
    fn null_deref_classification_end_to_end() {
        let mut m = boot(".text\nmain:\n movi r1, 0\n ld r0, [r1, 8]\n halt\n");
        match m.run(&mut NopHook, 1000) {
            Status::Faulted(f) => assert!(f.is_null_deref()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn echo_server_blocks_then_serves() {
        let mut m = boot(
            "
.text
main:
    sys accept
    mov r4, r0          ; conn
    mov r0, r4
    movi r1, buf
    movi r2, 64
    sys read
    mov r3, r0          ; n
    mov r0, r4
    movi r1, buf
    mov r2, r3
    sys write
    mov r0, r3
    halt
.data
buf: .space 64
",
        );
        // No connection yet: blocks on accept without advancing.
        assert_eq!(
            m.run(&mut NopHook, 100_000),
            Status::Blocked(BlockedOn::Accept)
        );
        m.net.push_connection(b"ping".to_vec());
        m.unblock();
        assert_eq!(run_to_halt(&mut m), 4);
        assert_eq!(m.net.conn(0).expect("conn").output, b"ping");
    }

    #[test]
    fn read_blocks_on_streaming_connection() {
        let mut m = boot(
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    halt
.data
buf: .space 8
",
        );
        let c = m.net.push_streaming_connection(Vec::new());
        assert_eq!(
            m.run(&mut NopHook, 10_000_000),
            Status::Blocked(BlockedOn::Read { conn: c })
        );
        m.net.append_input(c, b"hi").expect("append");
        m.unblock();
        assert_eq!(run_to_halt(&mut m), 2);
    }

    #[test]
    fn alloc_free_via_syscalls() {
        let mut m = boot(
            "
.text
main:
    movi r0, 100
    sys alloc
    mov r5, r0
    movi r1, 0x1234
    st [r5, 0], r1
    mov r0, r5
    sys free
    mov r0, r5
    halt
",
        );
        let ptr = run_to_halt(&mut m);
        assert!(ptr >= m.layout.heap_base && ptr < m.layout.heap_base + m.layout.heap_size);
        assert_eq!(m.heap.allocs, 1);
        assert_eq!(m.heap.frees, 1);
    }

    #[test]
    fn machine_clone_is_checkpoint() {
        let mut m = boot(
            ".text\nmain:\n movi r0, 1\n movi r1, v\n st [r1, 0], r0\n add r0, r0, r0\n halt\n.data\nv: .word 0\n",
        );
        m.step(); // movi r0,1
        let snap = m.clone();
        run_to_halt(&mut m);
        assert_eq!(m.cpu.get(Reg(0)), 2);
        // Rollback.
        let mut m = snap;
        assert_eq!(m.cpu.get(Reg(0)), 1);
        assert_eq!(run_to_halt(&mut m), 2, "replay reaches the same result");
    }

    #[test]
    fn deterministic_replay_includes_rng_and_clock() {
        let src = ".text\nmain:\n sys rand\n mov r5, r0\n sys time\n add r0, r0, r5\n halt\n";
        let mut a = boot(src);
        let mut b = boot(src);
        assert_eq!(run_to_halt(&mut a), run_to_halt(&mut b));
        assert_eq!(a.clock.cycles(), b.clock.cycles());
    }

    #[test]
    fn stack_overflow_is_caught() {
        let mut m = boot(".text\nmain:\n call main\n halt\n");
        match m.run(&mut NopHook, 100_000_000) {
            Status::Faulted(Fault::StackOverflow { .. }) => {}
            other => panic!("expected stack overflow, got {other:?}"),
        }
    }

    #[test]
    fn ret_to_attacker_address_faults_under_aslr_style_miss() {
        // Simulate a smashed return address pointing at unmapped memory.
        let mut m = boot(".text\nmain:\n movi r1, 0x66660000\n push r1\n ret\n");
        match m.run(&mut NopHook, 1000) {
            Status::Faulted(Fault::Unmapped {
                addr: 0x6666_0000, ..
            }) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn shellcode_on_stack_executes_when_nx_off() {
        // Write encoded instructions into the data segment and jump there.
        let mut m = boot(
            "
.text
main:
    movi r1, sc
    jmpr r1
.data
sc: .space 16
",
        );
        let sc_addr = m.symbols.addr_of("sc").expect("sc");
        let mut shell = Vec::new();
        shell.extend_from_slice(
            &Op::MovI {
                rd: Reg(0),
                imm: 0x77,
            }
            .encode(),
        );
        shell.extend_from_slice(&Op::Halt.encode());
        m.mem.write_bytes_host(sc_addr, &shell).expect("inject");
        assert_eq!(
            run_to_halt(&mut m),
            0x77,
            "data-segment shellcode ran (pre-NX)"
        );
        // With NX the same jump faults.
        let mut m2 = boot(".text\nmain:\n movi r1, sc\n jmpr r1\n.data\nsc: .space 16\n");
        m2.mem.write_bytes_host(sc_addr, &shell).expect("inject");
        m2.mem.nx = true;
        assert!(matches!(
            m2.run(&mut NopHook, 1000),
            Status::Faulted(Fault::Protection { .. })
        ));
    }

    #[test]
    fn cycle_budget_preempts() {
        let mut m = boot(".text\nmain:\n jmp main\n");
        let s = m.run(&mut NopHook, 1000);
        assert_eq!(s, Status::Running, "preempted, not stuck");
        assert!(m.clock.cycles() >= 1000);
    }
}
