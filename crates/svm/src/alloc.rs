//! The guest heap allocator — Sweeper's primary exploit surface.
//!
//! Like glibc's dlmalloc, all metadata lives *inline in guest memory*:
//! every chunk carries a `prev_size`/`size` boundary tag just below its
//! payload, and free chunks thread `fd`/`bk` pointers through their first
//! payload bytes. This is what makes the paper's Squid heap overflow
//! (CVE-2002-0068) and CVS double free (CVE-2003-0015) genuinely
//! exploitable here: an overflow rewrites the *next* chunk's boundary tag
//! and free-list pointers, and the next `free()` performs the classic
//! unlink `*(fd+12)=bk; *(bk+8)=fd` — an attacker-controlled 4-byte write.
//!
//! The allocator is intentionally *vulnerable* (no double-free check, no
//! pointer sanity check before unlink), matching the 2003-era targets.
//! Sweeper's memory-bug detector re-derives safety by monitoring these
//! structures from outside during replay.

use crate::error::Fault;
use crate::mem::Mem;

/// Size of the per-chunk boundary tag (prev_size + size words).
pub const HEADER_SIZE: u32 = 8;
/// Minimum whole-chunk size (header + room for fd/bk).
pub const MIN_CHUNK: u32 = 24;
/// In-use flag stored in the low bit of the size word.
pub const IN_USE: u32 = 1;

/// Host-side allocator state (checkpointed as plain data).
///
/// Only `brk` and the free-list head live here; everything an attacker can
/// corrupt lives in guest memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapState {
    /// First address of the heap region.
    pub base: u32,
    /// One past the last usable heap address.
    pub end: u32,
    /// Current break (next fresh chunk address).
    pub brk: u32,
    /// Head of the doubly-linked free list (0 = empty).
    pub free_head: u32,
    /// Counter of successful allocations (statistics).
    pub allocs: u64,
    /// Counter of frees (statistics).
    pub frees: u64,
}

/// Outcome of a `free` call, reported to instrumentation hooks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FreeKind {
    /// Chunk was in use and is now free.
    Normal,
    /// The chunk's in-use bit was already clear: a double free. The
    /// vulnerable allocator proceeds anyway (matching the CVS target).
    DoubleFree,
}

impl HeapState {
    /// A fresh heap covering `[base, base+size)`.
    pub fn new(base: u32, size: u32) -> HeapState {
        HeapState {
            base,
            end: base + size,
            brk: base,
            free_head: 0,
            allocs: 0,
            frees: 0,
        }
    }

    fn align8(n: u32) -> u32 {
        (n + 7) & !7
    }

    fn read_size(&self, mem: &Mem, pc: u32, chunk: u32) -> Result<u32, Fault> {
        mem.read_u32(pc, chunk + 4)
    }

    /// Validate a chunk's size word, aborting like glibc's
    /// "free(): invalid next size" on gross corruption. The check is
    /// deliberately shallow (size-word shape only): a *consistent* forged
    /// header — and the double-free list corruption — sails through,
    /// matching the 2003-era exploitability the evaluated CVEs relied on.
    fn check_size(&self, pc: u32, chunk: u32, size_word: u32) -> Result<u32, Fault> {
        let size = size_word & !IN_USE;
        if size < MIN_CHUNK
            || !size.is_multiple_of(8)
            || chunk < self.base
            || chunk + size > self.brk
        {
            return Err(Fault::HeapAbort { pc, chunk });
        }
        Ok(size)
    }

    /// Allocate `size` payload bytes; returns the payload pointer or 0.
    ///
    /// Walks the free list first-fit (following guest-memory `fd`
    /// pointers), splitting oversized chunks; falls back to extending the
    /// break. Returns `Err` only if corrupted metadata makes the allocator
    /// itself fault (e.g. an `fd` pointer into unmapped memory).
    pub fn alloc(&mut self, mem: &mut Mem, pc: u32, size: u32) -> Result<u32, Fault> {
        let need = Self::align8(size.max(16)) + HEADER_SIZE;
        // First-fit over the free list.
        let mut cur = self.free_head;
        let mut steps = 0u32;
        while cur != 0 {
            // A cycle (from double-free corruption) would loop forever;
            // glibc-era allocators spin too, but we bound and abort like a
            // detected arena corruption so the host regains control.
            steps += 1;
            if steps > 1_000_000 {
                return Err(Fault::HeapAbort { pc, chunk: cur });
            }
            let w = self.read_size(mem, pc, cur)?;
            let csize = self.check_size(pc, cur, w)?;
            if csize >= need {
                self.unlink(mem, pc, cur)?;
                self.split(mem, pc, cur, csize, need)?;
                self.allocs += 1;
                return Ok(cur + HEADER_SIZE);
            }
            cur = mem.read_u32(pc, cur + 8)?; // fd
        }
        // Extend the break.
        let Some(new_brk) = self.brk.checked_add(need) else {
            return Ok(0);
        };
        if new_brk > self.end {
            return Ok(0); // OOM.
        }
        let chunk = self.brk;
        self.brk += need;
        let prev_size = 0u32;
        mem.write_u32(pc, chunk, prev_size)?;
        mem.write_u32(pc, chunk + 4, need | IN_USE)?;
        self.allocs += 1;
        Ok(chunk + HEADER_SIZE)
    }

    /// Split chunk `c` (whole size `csize`) leaving `need` bytes in use and
    /// returning the remainder to the free list if it is large enough.
    fn split(
        &mut self,
        mem: &mut Mem,
        pc: u32,
        c: u32,
        csize: u32,
        need: u32,
    ) -> Result<(), Fault> {
        if csize >= need + MIN_CHUNK {
            let rem_addr = c + need;
            let rem_size = csize - need;
            mem.write_u32(pc, c + 4, need | IN_USE)?;
            mem.write_u32(pc, rem_addr, need)?; // prev_size of remainder
            mem.write_u32(pc, rem_addr + 4, rem_size)?;
            self.push_free(mem, pc, rem_addr)?;
            // Fix prev_size of the chunk after the remainder, if in heap.
            let after = rem_addr + rem_size;
            if after < self.brk {
                mem.write_u32(pc, after, rem_size)?;
            }
        } else {
            mem.write_u32(pc, c + 4, csize | IN_USE)?;
        }
        Ok(())
    }

    /// Remove chunk `c` from the free list — the classic unlink primitive.
    ///
    /// `fd`/`bk` are read from *guest memory*; if an overflow rewrote them,
    /// the two writes below go wherever the attacker chose.
    fn unlink(&mut self, mem: &mut Mem, pc: u32, c: u32) -> Result<(), Fault> {
        let fd = mem.read_u32(pc, c + 8)?;
        let bk = mem.read_u32(pc, c + 12)?;
        if bk != 0 {
            mem.write_u32(pc, bk + 8, fd)?; // bk->fd = fd
        } else {
            self.free_head = fd;
        }
        if fd != 0 {
            mem.write_u32(pc, fd + 12, bk)?; // fd->bk = bk
        }
        Ok(())
    }

    /// Push chunk `c` onto the free-list head.
    fn push_free(&mut self, mem: &mut Mem, pc: u32, c: u32) -> Result<(), Fault> {
        let old = self.free_head;
        mem.write_u32(pc, c + 8, old)?; // fd
        mem.write_u32(pc, c + 12, 0)?; // bk
        if old != 0 {
            mem.write_u32(pc, old + 12, c)?;
        }
        self.free_head = c;
        Ok(())
    }

    /// Free the payload pointer `ptr`.
    ///
    /// No double-free check (reported as [`FreeKind::DoubleFree`] to hooks
    /// but *performed anyway*), and coalescing unlinks the next chunk using
    /// its in-guest-memory pointers — both deliberate period-accurate
    /// vulnerabilities.
    pub fn free(&mut self, mem: &mut Mem, pc: u32, ptr: u32) -> Result<FreeKind, Fault> {
        let c = ptr.wrapping_sub(HEADER_SIZE);
        let size_word = self.read_size(mem, pc, c)?;
        let kind = if size_word & IN_USE == 0 {
            FreeKind::DoubleFree
        } else {
            FreeKind::Normal
        };
        let mut size = self.check_size(pc, c, size_word)?;
        // Coalesce forward: if the next chunk is free, unlink and absorb it.
        let next = c.wrapping_add(size);
        if next.wrapping_add(HEADER_SIZE) <= self.brk && next > c {
            let next_size_word = self.read_size(mem, pc, next)?;
            // An overflowed (garbage) next size word aborts, glibc-style.
            let next_size = self.check_size(pc, next, next_size_word)?;
            if next_size_word & IN_USE == 0 {
                self.unlink(mem, pc, next)?;
                size += next_size;
            }
        }
        mem.write_u32(pc, c + 4, size)?;
        let after = c.wrapping_add(size);
        if size != 0 && after < self.brk && after > c {
            mem.write_u32(pc, after, size)?;
        }
        self.push_free(mem, pc, c)?;
        self.frees += 1;
        Ok(kind)
    }

    /// Walk the heap's boundary tags from the base, returning each chunk as
    /// `(addr, whole_size, in_use)`. Stops (returning what it has plus an
    /// error flag) when a tag is inconsistent — used by core-dump analysis.
    pub fn walk(&self, mem: &Mem) -> (Vec<(u32, u32, bool)>, bool) {
        let mut out = Vec::new();
        let mut c = self.base;
        while c + HEADER_SIZE <= self.brk {
            let size_word = match mem.read_u32(0, c + 4) {
                Ok(w) => w,
                Err(_) => return (out, false),
            };
            let size = size_word & !IN_USE;
            if size < MIN_CHUNK.min(HEADER_SIZE + 16)
                || !size.is_multiple_of(8)
                || c + size > self.brk
            {
                return (out, false);
            }
            out.push((c, size, size_word & IN_USE != 0));
            c += size;
        }
        (out, c == self.brk)
    }

    /// Whether `addr` lies within the payload of a live (in-use) chunk; if
    /// so, returns `(payload_start, payload_len)`.
    pub fn live_chunk_containing(&self, mem: &Mem, addr: u32) -> Option<(u32, u32)> {
        let (chunks, _) = self.walk(mem);
        for (c, size, in_use) in chunks {
            let pay = c + HEADER_SIZE;
            let pay_len = size - HEADER_SIZE;
            if in_use && addr >= pay && addr < pay + pay_len {
                return Some((pay, pay_len));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Perm;

    const BASE: u32 = 0x10_000;
    const SIZE: u32 = 0x10_000;

    fn heap() -> (Mem, HeapState) {
        let mut mem = Mem::new();
        mem.map(BASE, SIZE, Perm::RW, "heap").expect("map");
        (mem, HeapState::new(BASE, SIZE))
    }

    #[test]
    fn alloc_returns_aligned_disjoint_payloads() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 10).expect("a");
        let b = h.alloc(&mut mem, 0, 100).expect("b");
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_eq!(a % 8, 0);
        assert!(b >= a + 16, "payloads must not overlap");
        mem.write_u32(0, a, 0x11111111).expect("w");
        mem.write_u32(0, b, 0x22222222).expect("w");
        assert_eq!(mem.read_u32(0, a).expect("r"), 0x11111111);
    }

    #[test]
    fn free_then_alloc_reuses_chunk() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        let _b = h.alloc(&mut mem, 0, 32).expect("b");
        assert_eq!(h.free(&mut mem, 0, a).expect("free"), FreeKind::Normal);
        let c = h.alloc(&mut mem, 0, 32).expect("c");
        assert_eq!(c, a, "freed chunk is reused");
    }

    #[test]
    fn oom_returns_null() {
        let (mut mem, mut h) = heap();
        assert_eq!(h.alloc(&mut mem, 0, SIZE).expect("big"), 0);
        // And normal allocation still works afterwards.
        assert_ne!(h.alloc(&mut mem, 0, 64).expect("small"), 0);
    }

    #[test]
    fn split_returns_remainder() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 1000).expect("a");
        h.free(&mut mem, 0, a).expect("free");
        let b = h.alloc(&mut mem, 0, 16).expect("b");
        assert_eq!(b, a, "first-fit reuses the big chunk");
        let c = h.alloc(&mut mem, 0, 16).expect("c");
        assert!(
            c > b && c < a + 1008,
            "second alloc carved from the remainder"
        );
    }

    #[test]
    fn walk_reports_consistent_heap() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 24).expect("a");
        let _b = h.alloc(&mut mem, 0, 40).expect("b");
        h.free(&mut mem, 0, a).expect("free");
        let (chunks, ok) = h.walk(&mem);
        assert!(ok);
        assert_eq!(chunks.len(), 2);
        assert!(!chunks[0].2, "first chunk is free");
        assert!(chunks[1].2, "second chunk is live");
    }

    #[test]
    fn walk_detects_corrupted_size() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 24).expect("a");
        let _b = h.alloc(&mut mem, 0, 24).expect("b");
        // Simulate an overflow trashing the next chunk's size word.
        let next = a - HEADER_SIZE + 32; // 24 -> need 16+8 = wait, alignment
        let _ = next;
        // Find b's header via walk, then corrupt it.
        let (chunks, ok) = h.walk(&mem);
        assert!(ok);
        mem.write_u32(0, chunks[1].0 + 4, 0xfff1).expect("corrupt");
        let (_, ok2) = h.walk(&mem);
        assert!(!ok2, "corruption detected");
    }

    #[test]
    fn double_free_is_reported_but_performed() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        assert_eq!(h.free(&mut mem, 0, a).expect("f1"), FreeKind::Normal);
        assert_eq!(h.free(&mut mem, 0, a).expect("f2"), FreeKind::DoubleFree);
        // The classic consequence: the same chunk is handed out twice.
        let x = h.alloc(&mut mem, 0, 32).expect("x");
        let y = h.alloc(&mut mem, 0, 32).expect("y");
        assert_eq!(
            x, y,
            "double free corrupts the free list into double allocation"
        );
    }

    #[test]
    fn unlink_with_corrupted_fd_writes_arbitrarily() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        let b = h.alloc(&mut mem, 0, 32).expect("b");
        let _guard = h.alloc(&mut mem, 0, 32).expect("guard");
        h.free(&mut mem, 0, b).expect("free b");
        // Overflow from `a` rewrites free chunk b's fd/bk words. In the
        // classic unlink attack both fd and bk must point at writable
        // memory; the payoff is `*(fd+12) = bk` and `*(bk+8) = fd`.
        let b_chunk = b - HEADER_SIZE;
        let fd_target = BASE + 0x8000; // Attacker-chosen addresses.
        let bk_target = BASE + 0x9000;
        mem.write_u32(0, b_chunk + 8, fd_target).expect("fd");
        mem.write_u32(0, b_chunk + 12, bk_target).expect("bk");
        // Allocation that reuses b triggers unlink.
        let c = h.alloc(&mut mem, 0, 32).expect("c");
        assert_eq!(c, b);
        assert_eq!(
            mem.read_u32(0, fd_target + 12).expect("r"),
            bk_target,
            "fd->bk = bk landed"
        );
        assert_eq!(
            mem.read_u32(0, bk_target + 8).expect("r"),
            fd_target,
            "bk->fd = fd landed"
        );
        let _ = a;
    }

    #[test]
    fn unlink_with_unmapped_fd_faults() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        let b = h.alloc(&mut mem, 0, 32).expect("b");
        h.free(&mut mem, 0, b).expect("free b");
        let b_chunk = b - HEADER_SIZE;
        mem.write_u32(0, b_chunk + 8, 0x6666_0000)
            .expect("fd -> unmapped");
        mem.write_u32(0, b_chunk + 12, 0x7777_0000)
            .expect("bk -> unmapped");
        let err = h.alloc(&mut mem, 0x1234, 32).unwrap_err();
        assert_eq!(err.pc(), 0x1234, "fault attributed to the alloc callsite");
        let _ = a;
    }

    #[test]
    fn free_with_trashed_next_header_aborts() {
        // The Squid-style detection signal: an overflow writes ASCII
        // garbage over the next chunk's size word; the following free()
        // aborts like glibc's "invalid next size".
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        let b = h.alloc(&mut mem, 0, 32).expect("b");
        let b_chunk = b - HEADER_SIZE;
        // Simulated overflow from `a` trashing b's header.
        mem.write_u32(0, b_chunk + 4, u32::from_le_bytes(*b"%7e%"))
            .expect("trash");
        let err = h.free(&mut mem, 0x99, a).unwrap_err();
        assert_eq!(
            err,
            Fault::HeapAbort {
                pc: 0x99,
                chunk: b_chunk
            }
        );
    }

    #[test]
    fn free_with_trashed_own_header_aborts() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        mem.write_u32(0, a - 4, 0x0000_000d).expect("trash"); // Unaligned size.
        assert!(matches!(
            h.free(&mut mem, 0, a),
            Err(Fault::HeapAbort { .. })
        ));
    }

    #[test]
    fn alloc_walk_over_corrupt_free_chunk_aborts() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        let _b = h.alloc(&mut mem, 0, 32).expect("b");
        h.free(&mut mem, 0, a).expect("free");
        mem.write_u32(0, a - 4, 7).expect("trash listed chunk size");
        assert!(matches!(
            h.alloc(&mut mem, 0, 32),
            Err(Fault::HeapAbort { .. })
        ));
    }

    #[test]
    fn coalescing_merges_neighbours() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        let b = h.alloc(&mut mem, 0, 32).expect("b");
        let _guard = h.alloc(&mut mem, 0, 32).expect("guard");
        h.free(&mut mem, 0, b).expect("free b");
        h.free(&mut mem, 0, a).expect("free a coalesces with b");
        let big = h.alloc(&mut mem, 0, 64).expect("big");
        assert_eq!(
            big, a,
            "coalesced chunk satisfies a larger request in place"
        );
    }

    #[test]
    fn live_chunk_containing_bounds() {
        let (mut mem, mut h) = heap();
        let a = h.alloc(&mut mem, 0, 32).expect("a");
        let (pay, len) = h.live_chunk_containing(&mem, a + 5).expect("live");
        assert_eq!(pay, a);
        assert!(len >= 32);
        assert!(
            h.live_chunk_containing(&mem, a + len).is_none(),
            "one past end"
        );
        h.free(&mut mem, 0, a).expect("free");
        assert!(
            h.live_chunk_containing(&mem, a).is_none(),
            "freed chunk not live"
        );
    }
}
