//! CPU register file and flags.

use crate::isa::{Cond, Reg, NUM_REGS};

/// Comparison flags (set by `cmp`/`cmpi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Operands were equal.
    pub zero: bool,
    /// First operand was (unsigned) below the second.
    pub below: bool,
}

impl Flags {
    /// Evaluate a branch condition against the current flags.
    pub fn holds(&self, cond: Cond) -> bool {
        match cond {
            Cond::Eq => self.zero,
            Cond::Ne => !self.zero,
            Cond::Lt => self.below,
            Cond::Le => self.below || self.zero,
            Cond::Gt => !self.below && !self.zero,
            Cond::Ge => !self.below,
        }
    }

    /// Set flags from an unsigned comparison of `a` against `b`.
    pub fn set_cmp(&mut self, a: u32, b: u32) {
        self.zero = a == b;
        self.below = a < b;
    }
}

/// The architectural register state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cpu {
    /// General-purpose registers (r0..r12, fp, sp).
    pub regs: [u32; NUM_REGS],
    /// Program counter.
    pub pc: u32,
    /// Comparison flags.
    pub flags: Flags,
}

impl Default for Cpu {
    fn default() -> Self {
        Cpu::new()
    }
}

impl Cpu {
    /// A zeroed CPU.
    pub fn new() -> Cpu {
        Cpu {
            regs: [0; NUM_REGS],
            pc: 0,
            flags: Flags::default(),
        }
    }

    /// Read a register.
    pub fn get(&self, r: Reg) -> u32 {
        self.regs[r.idx()]
    }

    /// Write a register.
    pub fn set(&mut self, r: Reg, v: u32) {
        self.regs[r.idx()] = v;
    }

    /// The stack pointer.
    pub fn sp(&self) -> u32 {
        self.get(Reg::SP)
    }

    /// The frame pointer.
    pub fn fp(&self) -> u32 {
        self.get(Reg::FP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_conditions() {
        let mut f = Flags::default();
        f.set_cmp(3, 3);
        assert!(f.holds(Cond::Eq) && f.holds(Cond::Le) && f.holds(Cond::Ge));
        assert!(!f.holds(Cond::Ne) && !f.holds(Cond::Lt) && !f.holds(Cond::Gt));
        f.set_cmp(2, 5);
        assert!(f.holds(Cond::Lt) && f.holds(Cond::Le) && f.holds(Cond::Ne));
        assert!(!f.holds(Cond::Ge));
        f.set_cmp(9, 5);
        assert!(f.holds(Cond::Gt) && f.holds(Cond::Ge));
        // Comparisons are unsigned: -1 as u32 is large.
        f.set_cmp(u32::MAX, 0);
        assert!(f.holds(Cond::Gt));
    }

    #[test]
    fn register_access() {
        let mut c = Cpu::new();
        c.set(Reg(5), 42);
        c.set(Reg::SP, 0x9000);
        assert_eq!(c.get(Reg(5)), 42);
        assert_eq!(c.sp(), 0x9000);
        assert_eq!(c.fp(), 0);
    }
}
