//! Fault and error types for the virtual machine.
//!
//! Guest misbehaviour (wild pointers, bad opcodes, heap corruption that
//! escapes the allocator) must be *contained*: it surfaces as a [`Fault`]
//! value that the embedding host inspects, never as a host panic. This is
//! the property Sweeper's lightweight monitoring relies on — under address
//! space randomization an exploit's hard-coded addresses miss, the guest
//! faults, and the fault is the detection signal.

use core::fmt;

/// The kind of memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// A data load.
    Read,
    /// A data store.
    Write,
    /// An instruction fetch.
    Exec,
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Access::Read => write!(f, "read"),
            Access::Write => write!(f, "write"),
            Access::Exec => write!(f, "exec"),
        }
    }
}

/// A hardware-level fault raised by the guest.
///
/// Faults carry the program counter of the faulting instruction and enough
/// detail for the post-attack analyses (core-dump analysis in particular)
/// to classify the failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// Access to an unmapped address.
    Unmapped {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The offending address.
        addr: u32,
        /// What kind of access was attempted.
        access: Access,
    },
    /// Access violating page permissions (e.g. write to code, exec of
    /// non-executable data when NX is enabled).
    Protection {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The offending address.
        addr: u32,
        /// What kind of access was attempted.
        access: Access,
    },
    /// An instruction word that does not decode.
    BadOpcode {
        /// Program counter of the undecodable word.
        pc: u32,
        /// The raw opcode byte.
        opcode: u8,
    },
    /// Integer division or remainder by zero.
    DivByZero {
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// The stack pointer left the stack region (guard-page hit).
    StackOverflow {
        /// Program counter of the faulting instruction.
        pc: u32,
        /// The stack pointer value at the time of the fault.
        sp: u32,
    },
    /// The runtime allocator detected metadata corruption it could not
    /// survive (the analogue of glibc aborting on an inconsistent arena).
    HeapAbort {
        /// Program counter of the `alloc`/`free` call that tripped it.
        pc: u32,
        /// Address of the corrupt chunk.
        chunk: u32,
    },
}

impl Fault {
    /// Program counter at which the fault was raised.
    pub fn pc(&self) -> u32 {
        match *self {
            Fault::Unmapped { pc, .. }
            | Fault::Protection { pc, .. }
            | Fault::BadOpcode { pc, .. }
            | Fault::DivByZero { pc }
            | Fault::StackOverflow { pc, .. }
            | Fault::HeapAbort { pc, .. } => pc,
        }
    }

    /// The address the fault concerns, if it is an addressing fault.
    pub fn fault_addr(&self) -> Option<u32> {
        match *self {
            Fault::Unmapped { addr, .. } | Fault::Protection { addr, .. } => Some(addr),
            Fault::HeapAbort { chunk, .. } => Some(chunk),
            Fault::StackOverflow { sp, .. } => Some(sp),
            _ => None,
        }
    }

    /// Whether this looks like a NULL-pointer dereference (address in the
    /// first, never-mapped page).
    pub fn is_null_deref(&self) -> bool {
        matches!(
            *self,
            Fault::Unmapped { addr, .. } if addr < crate::mem::PAGE_SIZE as u32
        )
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Fault::Unmapped { pc, addr, access } => {
                write!(
                    f,
                    "segfault: {access} of unmapped {addr:#010x} at pc {pc:#010x}"
                )
            }
            Fault::Protection { pc, addr, access } => {
                write!(
                    f,
                    "protection fault: {access} of {addr:#010x} at pc {pc:#010x}"
                )
            }
            Fault::BadOpcode { pc, opcode } => {
                write!(f, "illegal instruction {opcode:#04x} at pc {pc:#010x}")
            }
            Fault::DivByZero { pc } => write!(f, "division by zero at pc {pc:#010x}"),
            Fault::StackOverflow { pc, sp } => {
                write!(f, "stack overflow (sp {sp:#010x}) at pc {pc:#010x}")
            }
            Fault::HeapAbort { pc, chunk } => {
                write!(
                    f,
                    "heap metadata abort (chunk {chunk:#010x}) at pc {pc:#010x}"
                )
            }
        }
    }
}

/// Errors produced while building or loading guest programs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvmError {
    /// The assembler rejected the source.
    Asm {
        /// 1-based source line of the error.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// A program segment does not fit the requested layout.
    Layout(String),
    /// A host-side configuration error (bad connection id, etc.).
    Config(String),
}

impl fmt::Display for SvmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvmError::Asm { line, msg } => write!(f, "asm error at line {line}: {msg}"),
            SvmError::Layout(msg) => write!(f, "layout error: {msg}"),
            SvmError::Config(msg) => write!(f, "config error: {msg}"),
        }
    }
}

impl std::error::Error for SvmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_pc_is_preserved() {
        let f = Fault::Unmapped {
            pc: 0x1000,
            addr: 4,
            access: Access::Write,
        };
        assert_eq!(f.pc(), 0x1000);
        assert_eq!(f.fault_addr(), Some(4));
    }

    #[test]
    fn null_deref_classification() {
        let low = Fault::Unmapped {
            pc: 0,
            addr: 12,
            access: Access::Read,
        };
        let high = Fault::Unmapped {
            pc: 0,
            addr: 0x8000_0000,
            access: Access::Read,
        };
        assert!(low.is_null_deref());
        assert!(!high.is_null_deref());
        let prot = Fault::Protection {
            pc: 0,
            addr: 12,
            access: Access::Read,
        };
        assert!(!prot.is_null_deref());
    }

    #[test]
    fn display_is_informative() {
        let f = Fault::BadOpcode {
            pc: 0x44,
            opcode: 0xff,
        };
        let s = f.to_string();
        assert!(s.contains("0xff") && s.contains("0x00000044"));
    }
}
