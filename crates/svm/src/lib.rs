//! # svm — the Sweeper virtual machine substrate
//!
//! A deterministic, fault-containing user-level virtual machine that stands
//! in for the paper's x86/Linux/PIN substrate (see `DESIGN.md` §2 for the
//! substitution argument). It provides:
//!
//! - a small fixed-width RISC-like ISA ([`isa`]) with an assembler
//!   ([`asm`]) and loader ([`loader`]) supporting address-space
//!   randomization;
//! - paged, permission-checked, copy-on-write guest memory ([`mem`]);
//! - a deliberately vulnerable in-guest-memory heap allocator ([`alloc`])
//!   with glibc-style inline boundary tags and unlink semantics;
//! - a connection-oriented network endpoint ([`net`]) whose reads carry
//!   input-stream offsets (the taint source);
//! - instruction-level instrumentation hooks ([`hook`]) that the `dbi`
//!   crate turns into PIN-style dynamic instrumentation;
//! - a predecoded-page instruction cache ([`icache`]) that accelerates the
//!   dispatch loop while staying bit-identical to word-at-a-time decode;
//! - a superblock execution tier ([`superblock`]) above the icache that
//!   fuses straight-line decoded runs into closure chains dispatched as
//!   one unit while no instrumentation hook is live, again bit-identical
//!   by construction;
//! - a virtual clock with an explicit cost model ([`clock`]) so overhead
//!   experiments are deterministic.
//!
//! Cloning a [`machine::Machine`] is an O(pages) copy-on-write checkpoint;
//! execution is fully deterministic given the same inputs, which is what
//! makes Sweeper's rollback/re-execute analysis loop possible.

pub mod alloc;
pub mod asm;
pub mod clock;
pub mod cpu;
pub mod debug;
pub mod disasm;
pub mod error;
pub mod hook;
pub mod icache;
pub mod isa;
pub mod loader;
pub mod machine;
pub mod mem;
pub mod net;
pub mod rng;
pub mod stdlib;
pub mod superblock;

pub use error::{Access, Fault, SvmError};
pub use hook::{Hook, NopHook};
pub use icache::{CacheStats, DecodeCache};
pub use machine::{Machine, Status};
pub use superblock::{SbCache, SbStats};
