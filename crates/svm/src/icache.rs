//! Predecoded-page instruction cache for the interpreter hot loop.
//!
//! Every layer of the reproduction — the always-on production service,
//! checkpointed replay, each DBI re-execution, and the real-host
//! community campaign — funnels through `Machine::step`, which used to
//! re-fetch 8 bytes (sixteen `BTreeMap` probes) and re-run `Op::decode`
//! for every retired instruction. This module caches the decode work at
//! page granularity, the unit JITScanner-style systems use for
//! check-and-cache over executable memory:
//!
//! - **Per-page arrays** of decoded [`Op`]s ([`SLOTS_PER_PAGE`] slots),
//!   built lazily the first time any instruction on a page executes.
//! - **Keyed by (page index, layout tag)**: a layout change (ASLR
//!   re-randomization, see [`Layout::cache_tag`]) flushes the cache.
//! - **Precise invalidation** on any guest or host write to a cached
//!   page, via [`Mem::page_gen`] write generations — self-modifying
//!   code, host shellcode injection, and allocator-metadata stores near
//!   code all invalidate exactly the dirtied page. The hot-path check
//!   is O(1): while [`Mem::write_seq`] is unchanged since the last
//!   validation, the page is provably untouched.
//! - **Cold after clone**: cloning a machine *is* a checkpoint, so a
//!   rolled-back machine must never reuse decode state from the live
//!   one; [`DecodeCache`]'s `Clone` therefore yields an empty cache
//!   (see `checkpoint::manager` for the rollback side).
//!
//! Correctness contract: a cache hit returns exactly the `Op` that
//! `Op::decode(mem.fetch(pc)?, pc)` would return, and every bypass
//! (disabled cache, unaligned pc, non-executable page, undecodable
//! word) falls back to that slow path, so faults surface at the same
//! pc with the same payload and the virtual clock advances identically.
//!
//! This is the middle of three execution tiers (interpreter → icache →
//! [`superblock`](crate::superblock)). The superblock tier reuses the
//! same write-generation scheme but keeps its **own** counters: a
//! single dirtying event observed by both tiers is one invalidation in
//! each tier's stats, and the two sets are never summed — see
//! [`Machine::icache_stats`](crate::machine::Machine::icache_stats).

use crate::isa::{Op, INSN_SIZE};
use crate::loader::Layout;
use crate::mem::{Mem, PAGE_SIZE};

/// Decoded slots per page (512 fixed-width instructions).
pub const SLOTS_PER_PAGE: usize = PAGE_SIZE / INSN_SIZE as usize;

/// Upper bound on cached pages before a wholesale flush (guards memory
/// on pathological jump-everywhere guests; ordinary servers execute a
/// handful of code pages).
const MAX_CACHED_PAGES: usize = 128;

/// Hit/miss/invalidation counters, exposed for reports and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Dispatches served from a predecoded slot.
    pub hits: u64,
    /// Page builds (first execution of a page).
    pub misses: u64,
    /// Page rebuilds forced by a write to a cached page.
    pub invalidations: u64,
    /// Dispatches that fell back to the slow fetch+decode path
    /// (unaligned pc, non-executable page, undecodable word).
    pub bypasses: u64,
    /// Wholesale flushes (layout change, NX toggle, capacity, restore).
    pub flushes: u64,
}

/// One predecoded page.
struct CachedPage {
    /// Guest page number.
    pno: u32,
    /// [`Mem::page_gen`] value the slots were decoded against.
    gen: u64,
    /// [`Mem::write_seq`] value at the last validation of this page.
    seen_seq: u64,
    /// Decoded slot per aligned pc; `None` = undecodable word (the
    /// dispatcher re-runs the slow path to raise the precise fault).
    slots: Box<[Option<Op>]>,
}

impl CachedPage {
    fn build(pno: u32, mem: &Mem) -> Option<CachedPage> {
        let bytes = mem.page_bytes(pno)?;
        let mut slots = Vec::with_capacity(SLOTS_PER_PAGE);
        for i in 0..SLOTS_PER_PAGE {
            let mut w = [0u8; 8];
            w.copy_from_slice(&bytes[i * INSN_SIZE as usize..(i + 1) * INSN_SIZE as usize]);
            slots.push(Op::decode_word(w));
        }
        Some(CachedPage {
            pno,
            gen: mem.page_gen(pno),
            seen_seq: mem.write_seq(),
            slots: slots.into_boxed_slice(),
        })
    }

    fn redecode(&mut self, mem: &Mem) {
        if let Some(bytes) = mem.page_bytes(self.pno) {
            for (i, slot) in self.slots.iter_mut().enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(&bytes[i * INSN_SIZE as usize..(i + 1) * INSN_SIZE as usize]);
                *slot = Op::decode_word(w);
            }
            self.gen = mem.page_gen(self.pno);
        }
    }
}

/// The per-machine predecoded instruction cache.
///
/// Lives inside `Machine`; consult it with [`DecodeCache::lookup`]
/// before the slow fetch+decode path. `Clone` is intentionally *cold*
/// (an empty cache with the same enable flag): machine clones are
/// checkpoints, and decode state must never leak across a rollback.
pub struct DecodeCache {
    enabled: bool,
    /// Tag of the [`Layout`] the cache was built against.
    layout_tag: u64,
    /// NX setting the cache was built against (a toggle flushes, since
    /// executability of data pages changes under it).
    nx: bool,
    pages: Vec<CachedPage>,
    /// Index of the most recently used page (hot loops stay on one page).
    mru: usize,
    stats: CacheStats,
}

impl Clone for DecodeCache {
    /// Cloning yields a *cold* cache: clones are checkpoints/rollbacks
    /// and must revalidate everything against their own memory.
    fn clone(&self) -> DecodeCache {
        DecodeCache::new(self.enabled)
    }
}

impl DecodeCache {
    /// An empty cache.
    pub fn new(enabled: bool) -> DecodeCache {
        DecodeCache {
            enabled,
            layout_tag: 0,
            nx: false,
            pages: Vec::new(),
            mru: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether the cache is consulted at all.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Enable or disable the cache (disabling drops all entries).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if !enabled {
            self.pages.clear();
            self.mru = 0;
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of pages currently predecoded.
    pub fn cached_pages(&self) -> usize {
        self.pages.len()
    }

    /// Drop every entry (layout re-randomization, checkpoint restore,
    /// or any out-of-band replacement of the machine's memory).
    pub fn flush(&mut self) {
        if !self.pages.is_empty() {
            self.stats.flushes += 1;
        }
        self.pages.clear();
        self.mru = 0;
    }

    /// Look up the decoded instruction at `pc`, building/validating the
    /// page entry as needed. `None` means "take the slow path" (which
    /// reproduces the exact fault, if any).
    pub fn lookup(&mut self, mem: &Mem, layout: &Layout, pc: u32) -> Option<Op> {
        if !self.enabled {
            return None;
        }
        // Key check: (page index, layout tag). A re-randomized layout or
        // NX toggle invalidates wholesale.
        let tag = layout.cache_tag();
        if self.layout_tag != tag || self.nx != mem.nx {
            self.flush();
            self.layout_tag = tag;
            self.nx = mem.nx;
        }
        if !pc.is_multiple_of(INSN_SIZE) {
            // Misaligned fetch can straddle pages; slow path handles it.
            self.stats.bypasses += 1;
            return None;
        }
        let pno = pc / PAGE_SIZE as u32;
        let slot = ((pc % PAGE_SIZE as u32) / INSN_SIZE) as usize;
        let idx = match self.find(pno) {
            Some(i) => i,
            None => {
                if !mem.page_exec_ok(pno) {
                    // Unmapped or not executable: the slow path raises
                    // the precise Unmapped/Protection fault.
                    self.stats.bypasses += 1;
                    return None;
                }
                if self.pages.len() >= MAX_CACHED_PAGES {
                    self.flush();
                }
                let built = CachedPage::build(pno, mem)?;
                self.stats.misses += 1;
                self.pages.push(built);
                self.pages.len() - 1
            }
        };
        self.mru = idx;
        let page = &mut self.pages[idx];
        // Precise invalidation: skip entirely while nothing anywhere was
        // written; otherwise compare this page's write generation.
        if page.seen_seq != mem.write_seq() {
            if page.gen != mem.page_gen(pno) {
                page.redecode(mem);
                self.stats.invalidations += 1;
            }
            page.seen_seq = mem.write_seq();
        }
        match page.slots[slot] {
            Some(op) => {
                self.stats.hits += 1;
                Some(op)
            }
            None => {
                self.stats.bypasses += 1;
                None
            }
        }
    }

    fn find(&self, pno: u32) -> Option<usize> {
        if let Some(p) = self.pages.get(self.mru) {
            if p.pno == pno {
                return Some(self.mru);
            }
        }
        self.pages.iter().position(|p| p.pno == pno)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Perm;

    fn code_mem(ops: &[Op]) -> Mem {
        let mut m = Mem::new();
        m.map(0x1000, PAGE_SIZE as u32, Perm::RWX, "code")
            .expect("map");
        let mut bytes = Vec::new();
        for op in ops {
            bytes.extend_from_slice(&op.encode());
        }
        m.write_bytes_host(0x1000, &bytes).expect("w");
        m
    }

    #[test]
    fn hit_returns_the_decoded_op_and_counts() {
        use crate::isa::Reg;
        let op = Op::MovI {
            rd: Reg(3),
            imm: 0x42,
        };
        let mem = code_mem(&[op, Op::Halt]);
        let mut c = DecodeCache::new(true);
        let lay = Layout::nominal();
        assert_eq!(c.lookup(&mem, &lay, 0x1000), Some(op));
        assert_eq!(c.lookup(&mem, &lay, 0x1008), Some(Op::Halt));
        assert_eq!(c.stats().misses, 1, "one page build");
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.cached_pages(), 1);
    }

    #[test]
    fn write_to_cached_page_invalidates_precisely() {
        let mem = code_mem(&[Op::Nop, Op::Halt]);
        let mut c = DecodeCache::new(true);
        let lay = Layout::nominal();
        assert_eq!(c.lookup(&mem, &lay, 0x1000), Some(Op::Nop));
        // Overwrite slot 0 with `halt` via a guest-visible write.
        let mut mem = mem;
        mem.write_bytes_host(0x1000, &Op::Halt.encode()).expect("w");
        assert_eq!(
            c.lookup(&mem, &lay, 0x1000),
            Some(Op::Halt),
            "stale Op must not be served after the page was written"
        );
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn unaligned_and_undecodable_bypass() {
        let mut mem = code_mem(&[Op::Nop]);
        // Plant an undecodable opcode in slot 1.
        mem.write_bytes_host(0x1008, &[0x7f; 8]).expect("w");
        let mut c = DecodeCache::new(true);
        let lay = Layout::nominal();
        assert_eq!(c.lookup(&mem, &lay, 0x1004), None, "unaligned");
        assert_eq!(c.lookup(&mem, &lay, 0x1008), None, "undecodable word");
        assert_eq!(c.lookup(&mem, &lay, 0x9000), None, "unmapped page");
        assert_eq!(c.stats().hits, 0);
        assert!(c.stats().bypasses >= 3);
    }

    #[test]
    fn layout_and_nx_changes_flush() {
        let mem = code_mem(&[Op::Nop]);
        let mut c = DecodeCache::new(true);
        let lay = Layout::nominal();
        assert!(c.lookup(&mem, &lay, 0x1000).is_some());
        let mut other = Layout::nominal();
        other.code_base += PAGE_SIZE as u32; // re-randomized layout
        assert!(c.lookup(&mem, &other, 0x1000).is_some());
        assert_eq!(c.stats().flushes, 1, "layout change flushed");
        let mut mem = mem;
        mem.nx = true; // RWX page stays executable, but the key changes
        assert!(c.lookup(&mem, &other, 0x1000).is_some());
        assert_eq!(c.stats().flushes, 2, "NX toggle flushed");
    }

    #[test]
    fn clone_is_cold() {
        let mem = code_mem(&[Op::Nop]);
        let mut c = DecodeCache::new(true);
        assert!(c.lookup(&mem, &Layout::nominal(), 0x1000).is_some());
        let snap = c.clone();
        assert!(snap.enabled());
        assert_eq!(snap.cached_pages(), 0, "clone starts cold");
        assert_eq!(snap.stats(), CacheStats::default());
    }

    #[test]
    fn disabled_cache_never_answers() {
        let mem = code_mem(&[Op::Nop]);
        let mut c = DecodeCache::new(false);
        assert_eq!(c.lookup(&mem, &Layout::nominal(), 0x1000), None);
        assert_eq!(c.stats(), CacheStats::default());
    }
}
