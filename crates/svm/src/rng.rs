//! Deterministic guest RNG (xorshift64*).
//!
//! The guest `rand` syscall must be *checkpointable*: after a rollback the
//! replay must see the same random sequence, or re-execution diverges (the
//! SSL session-key problem §4.1 of the paper). The RNG state is therefore
//! part of the machine state captured by checkpoints.

/// A small deterministic PRNG with checkpointable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Create from a nonzero seed (zero is mapped to a fixed constant).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Next 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, n)` (n > 0).
    pub fn below(&mut self, n: u32) -> u32 {
        (self.next_u64() % n as u64) as u32
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The raw state (for checkpointing).
    pub fn state(&self) -> u64 {
        self.state
    }

    /// Restore from raw state.
    pub fn from_state(state: u64) -> XorShift64 {
        XorShift64::new(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = XorShift64::new(42);
        let mut b = XorShift64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn checkpoint_restore_resumes_sequence() {
        let mut a = XorShift64::new(7);
        a.next_u64();
        let saved = a.state();
        let expect: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let mut b = XorShift64::from_state(saved);
        let got: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(expect, got);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_is_in_range_and_f64_in_unit() {
        let mut r = XorShift64::new(1234);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
