//! Program loading, address-space layout, and randomization.
//!
//! The loader assigns each segment (code, lib, data, heap, stack) a base
//! address, applies relocations, and produces a symbol map used by the
//! analysis tools to render results like the paper's
//! "`0x4f0f0907` in `strcat`, called by `0x804ee82` (`ftpBuildTitleUrl`)".
//!
//! Address-space randomization — Sweeper's default lightweight monitor —
//! slides each base by an independent random page count drawn from
//! `entropy_bits` of entropy. Exploits carry addresses computed for some
//! concrete layout; under a different layout they miss and the guest
//! faults, which *is* the detection signal.

use std::collections::HashMap;

use crate::asm::{Program, Seg};
use crate::error::SvmError;
use crate::mem::{Mem, Perm, PAGE_SIZE};
use crate::rng::XorShift64;

/// Default (unrandomized) code base, echoing 2003-era Linux `0x08xxxxxx`.
pub const CODE_BASE: u32 = 0x0804_0000;
/// Default library base, echoing the paper's `0x4fxxxxxx` libc addresses.
pub const LIB_BASE: u32 = 0x4f0e_0000;
/// Default data base. Bases are spaced further apart than the maximum
/// randomization slide (2^12 pages = 16.8 MiB) so independently slid
/// segments can never collide; base bytes avoid `\n`/space/NUL because
/// exploit payloads carry absolute addresses through byte-sensitive
/// parsers.
pub const DATA_BASE: u32 = 0x0b10_0000;
/// Default heap base.
pub const HEAP_BASE: u32 = 0x0d00_0000;
/// Default stack top (stack grows down from here).
pub const STACK_TOP: u32 = 0xbfff_0000;
/// Default heap size.
pub const HEAP_SIZE: u32 = 0x0010_0000;
/// Default stack size.
pub const STACK_SIZE: u32 = 0x0002_0000;

/// Address-space randomization policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aslr {
    /// Whether randomization is applied at all.
    pub enabled: bool,
    /// Bits of page-granularity entropy per segment. The paper (citing
    /// Shacham et al.) uses a per-attempt bypass probability of 2^-12, so
    /// 12 bits is the default.
    pub entropy_bits: u8,
    /// Seed for the layout draw.
    pub seed: u64,
}

impl Aslr {
    /// Randomization disabled (the attacker's assumed layout).
    pub fn off() -> Aslr {
        Aslr {
            enabled: false,
            entropy_bits: 0,
            seed: 0,
        }
    }

    /// Standard 12-bit randomization with the given seed.
    pub fn on(seed: u64) -> Aslr {
        Aslr {
            enabled: true,
            entropy_bits: 12,
            seed,
        }
    }

    /// The policy for the `n`-th post-attack re-randomization of this
    /// process (n = 1, 2, ...).
    ///
    /// The seed is derived with a splitmix64-style finalizer over
    /// `(seed, n)` — a bijective mix, so distinct `n` values can never
    /// collapse onto the same derived seed the way the old
    /// `seed.wrapping_add(attacks_detected)` did (which could re-derive
    /// a previously used layout after repeated rollback cycles, or
    /// collide with a neighbouring host's boot seed `seed + k`).
    pub fn rerandomize(&self, n: u64) -> Aslr {
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(n));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Aslr { seed: z, ..*self }
    }
}

/// The concrete address-space layout chosen for a process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Base of the `.text` segment.
    pub code_base: u32,
    /// Base of the `.lib` segment.
    pub lib_base: u32,
    /// Base of the `.data` segment.
    pub data_base: u32,
    /// Base of the heap region.
    pub heap_base: u32,
    /// Size of the heap region in bytes.
    pub heap_size: u32,
    /// Top of the stack (initial `sp` is just below).
    pub stack_top: u32,
    /// Size of the stack region in bytes.
    pub stack_size: u32,
}

impl Layout {
    /// The deterministic layout used when ASLR is off — the layout worms
    /// compute their hard-coded addresses against.
    pub fn nominal() -> Layout {
        Layout {
            code_base: CODE_BASE,
            lib_base: LIB_BASE,
            data_base: DATA_BASE,
            heap_base: HEAP_BASE,
            heap_size: HEAP_SIZE,
            stack_top: STACK_TOP,
            stack_size: STACK_SIZE,
        }
    }

    /// Draw a layout under the given randomization policy.
    pub fn randomized(aslr: Aslr) -> Layout {
        if !aslr.enabled || aslr.entropy_bits == 0 {
            return Layout::nominal();
        }
        let mut rng = XorShift64::new(aslr.seed);
        let mask = (1u32 << aslr.entropy_bits.min(16)) - 1;
        let page = PAGE_SIZE as u32;
        let mut slide = || (rng.next_u32() & mask) * page;
        let mut l = Layout::nominal();
        l.code_base += slide();
        l.lib_base += slide();
        l.data_base += slide();
        l.heap_base += slide();
        l.stack_top -= slide();
        l
    }

    /// A fingerprint of this layout for predecode-cache keying.
    ///
    /// The decode cache is keyed by (page index, layout tag): if a
    /// machine's layout is ever re-randomized (fresh ASLR draw on
    /// restart/recovery), the tag changes and every predecoded page is
    /// invalidated wholesale, because absolute jump/call targets decoded
    /// under the old bases would otherwise survive the slide.
    pub fn cache_tag(&self) -> u64 {
        // FNV-1a over the seven layout words: cheap, deterministic, and
        // distinct for any differing base.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for w in [
            self.code_base,
            self.lib_base,
            self.data_base,
            self.heap_base,
            self.heap_size,
            self.stack_top,
            self.stack_size,
        ] {
            h ^= w as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Base address of an assembler segment under this layout.
    pub fn seg_base(&self, seg: Seg) -> u32 {
        match seg {
            Seg::Text => self.code_base,
            Seg::Lib => self.lib_base,
            Seg::Data => self.data_base,
        }
    }
}

/// One entry of the loaded symbol map.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Final virtual address.
    pub addr: u32,
    /// Symbol name.
    pub name: String,
    /// Segment of definition.
    pub seg: Seg,
}

/// Address-to-name resolution for analysis output.
#[derive(Debug, Clone, Default)]
pub struct SymbolMap {
    sorted: Vec<Symbol>,
    /// Half-open `[start, end)` ranges of the loaded segments; addresses
    /// outside them resolve to `None` (a wild jump target prints `?`).
    ranges: Vec<(u32, u32)>,
}

impl SymbolMap {
    /// Build from final symbol addresses, unbounded (all addresses
    /// considered resolvable). Prefer [`SymbolMap::with_bounds`].
    pub fn new(mut syms: Vec<Symbol>) -> SymbolMap {
        syms.sort_by_key(|s| s.addr);
        SymbolMap {
            sorted: syms,
            ranges: Vec::new(),
        }
    }

    /// Build with explicit segment ranges.
    pub fn with_bounds(syms: Vec<Symbol>, ranges: Vec<(u32, u32)>) -> SymbolMap {
        let mut map = SymbolMap::new(syms);
        map.ranges = ranges;
        map
    }

    /// Whether `addr` falls inside a loaded segment.
    pub fn in_bounds(&self, addr: u32) -> bool {
        self.ranges.is_empty() || self.ranges.iter().any(|&(s, e)| addr >= s && addr < e)
    }

    /// The symbol at or immediately below `addr` — i.e. the function (or
    /// data object) containing `addr`. `None` for out-of-segment
    /// addresses such as wild jump targets.
    pub fn resolve(&self, addr: u32) -> Option<&Symbol> {
        if !self.in_bounds(addr) {
            return None;
        }
        let idx = self.sorted.partition_point(|s| s.addr <= addr);
        // Walk down past data labels to the nearest enclosing entry.
        self.sorted[..idx].last()
    }

    /// The exact symbol with the given name, if defined.
    pub fn addr_of(&self, name: &str) -> Option<u32> {
        self.sorted.iter().find(|s| s.name == name).map(|s| s.addr)
    }

    /// Render an address as `0xADDR (name+off)` for reports.
    pub fn render(&self, addr: u32) -> String {
        match self.resolve(addr) {
            Some(s) if addr >= s.addr => {
                let off = addr - s.addr;
                if off == 0 {
                    format!("{addr:#010x} ({})", s.name)
                } else {
                    format!("{addr:#010x} ({}+{off:#x})", s.name)
                }
            }
            _ => format!("{addr:#010x} (?)"),
        }
    }

    /// All symbols, sorted by address.
    pub fn all(&self) -> &[Symbol] {
        &self.sorted
    }
}

/// Result of loading: initialized memory, entry point, layout, symbols.
pub struct Image {
    /// Fully initialized guest memory.
    pub mem: Mem,
    /// Entry program counter.
    pub entry: u32,
    /// Initial stack pointer.
    pub initial_sp: u32,
    /// The chosen layout.
    pub layout: Layout,
    /// Symbol map for diagnostics.
    pub symbols: SymbolMap,
}

fn page_round_up(n: u32) -> u32 {
    let p = PAGE_SIZE as u32;
    n.div_ceil(p) * p
}

/// Load an assembled program under the given layout.
pub fn load(prog: &Program, layout: Layout) -> Result<Image, SvmError> {
    let mut mem = Mem::new();
    let lay_err = |e: String| SvmError::Layout(e);

    let text_len = page_round_up(prog.text.len().max(1) as u32);
    let lib_len = page_round_up(prog.lib.len().max(1) as u32);
    let data_len = page_round_up((prog.data.len() as u32).max(1) + PAGE_SIZE as u32);
    mem.map(layout.code_base, text_len, Perm::RX, "code")
        .map_err(lay_err)?;
    mem.map(layout.lib_base, lib_len, Perm::RX, "lib")
        .map_err(lay_err)?;
    mem.map(layout.data_base, data_len, Perm::RW, "data")
        .map_err(lay_err)?;
    mem.map(layout.heap_base, layout.heap_size, Perm::RW, "heap")
        .map_err(lay_err)?;
    let stack_base = layout.stack_top - layout.stack_size;
    mem.map(stack_base, layout.stack_size, Perm::RW, "stack")
        .map_err(lay_err)?;

    // Resolve final symbol addresses.
    let mut final_addr: HashMap<&str, u32> = HashMap::new();
    let mut symbols = Vec::new();
    for (name, sym) in &prog.symbols {
        let addr = layout.seg_base(sym.seg) + sym.off;
        final_addr.insert(name.as_str(), addr);
        symbols.push(Symbol {
            addr,
            name: name.clone(),
            seg: sym.seg,
        });
    }

    // Copy segment bytes, then patch relocations.
    let mut text = prog.text.clone();
    let mut lib = prog.lib.clone();
    let mut data = prog.data.clone();
    for r in &prog.relocs {
        let target = *final_addr
            .get(r.symbol.as_str())
            .ok_or_else(|| SvmError::Layout(format!("undefined symbol {}", r.symbol)))?;
        let value = (target as i64 + r.addend) as u32;
        let buf = match r.seg {
            Seg::Text => &mut text,
            Seg::Lib => &mut lib,
            Seg::Data => &mut data,
        };
        let slot = r.slot as usize;
        if slot + 4 > buf.len() {
            return Err(SvmError::Layout(format!("reloc slot {slot} out of range")));
        }
        buf[slot..slot + 4].copy_from_slice(&value.to_le_bytes());
    }
    let werr = |_| SvmError::Layout("segment write failed".into());
    mem.write_bytes_host(layout.code_base, &text)
        .map_err(werr)?;
    mem.write_bytes_host(layout.lib_base, &lib).map_err(werr)?;
    mem.write_bytes_host(layout.data_base, &data)
        .map_err(werr)?;

    let entry = *final_addr
        .get(prog.entry.as_str())
        .ok_or_else(|| SvmError::Layout(format!("entry `{}` missing", prog.entry)))?;
    let ranges = vec![
        (layout.code_base, layout.code_base + text_len),
        (layout.lib_base, layout.lib_base + lib_len),
        (layout.data_base, layout.data_base + data_len),
    ];
    Ok(Image {
        mem,
        entry,
        initial_sp: layout.stack_top - 16,
        layout,
        symbols: SymbolMap::with_bounds(symbols, ranges),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn prog() -> Program {
        assemble(
            ".text\nmain:\n movi r0, msg\n call f\n halt\nf:\n ret\n.lib\nlf:\n ret\n.data\nmsg: .string \"x\"\n",
        )
        .expect("asm")
    }

    #[test]
    fn load_patches_relocations() {
        let img = load(&prog(), Layout::nominal()).expect("load");
        // First instruction: movi r0, <addr of msg in data seg>.
        let imm = img.mem.read_u32(0, CODE_BASE + 4).expect("read");
        assert_eq!(imm, DATA_BASE);
        // Call target is f = code base + 3*8.
        let call_imm = img.mem.read_u32(0, CODE_BASE + 8 + 4).expect("read");
        assert_eq!(call_imm, CODE_BASE + 24);
        assert_eq!(img.entry, CODE_BASE);
    }

    #[test]
    fn aslr_slides_segments_independently() {
        let a = Layout::randomized(Aslr::on(1));
        let b = Layout::randomized(Aslr::on(2));
        assert_ne!(a.lib_base, b.lib_base);
        assert_ne!(a, Layout::nominal());
        assert_eq!(a.code_base % PAGE_SIZE as u32, 0);
        // Same seed -> same layout (determinism for replay).
        assert_eq!(Layout::randomized(Aslr::on(1)), a);
        // Disabled -> nominal.
        assert_eq!(Layout::randomized(Aslr::off()), Layout::nominal());
    }

    #[test]
    fn cache_tag_distinguishes_layouts() {
        let nominal = Layout::nominal();
        assert_eq!(nominal.cache_tag(), Layout::nominal().cache_tag());
        for seed in 1..16u64 {
            let l = Layout::randomized(Aslr::on(seed));
            assert_ne!(
                l.cache_tag(),
                nominal.cache_tag(),
                "seed {seed} produced a colliding tag"
            );
            assert_eq!(
                l.cache_tag(),
                Layout::randomized(Aslr::on(seed)).cache_tag()
            );
        }
    }

    #[test]
    fn rerandomize_never_repeats_a_layout() {
        // Regression for the post-attack reseed: N consecutive
        // re-randomizations of the same base policy must yield N distinct
        // layouts (cache tags), none equal to the boot layout, and must
        // not collide with a neighbouring host's boot seed (the old
        // `seed + k` arithmetic collided with both).
        use std::collections::HashSet;
        let base = Aslr::on(17);
        let boot_tag = Layout::randomized(base).cache_tag();
        let mut seen: HashSet<u64> = HashSet::new();
        seen.insert(boot_tag);
        for n in 1..=64u64 {
            let re = base.rerandomize(n);
            assert!(re.enabled);
            assert_eq!(re.entropy_bits, base.entropy_bits);
            let tag = Layout::randomized(re).cache_tag();
            assert!(
                seen.insert(tag),
                "re-randomization #{n} repeated an earlier layout"
            );
            // Old bug: seed + n equals the boot seed of host 17 + n.
            assert_ne!(
                re.seed,
                base.seed + n,
                "derived seed must not collide with a neighbour's boot seed"
            );
        }
    }

    #[test]
    fn aslr_entropy_respects_bits() {
        for seed in 0..32 {
            let l = Layout::randomized(Aslr {
                enabled: true,
                entropy_bits: 4,
                seed,
            });
            let max_slide = 16 * PAGE_SIZE as u32;
            assert!(l.code_base - CODE_BASE < max_slide);
            assert!(l.lib_base - LIB_BASE < max_slide);
            assert!(STACK_TOP - l.stack_top < max_slide);
        }
    }

    #[test]
    fn symbol_map_resolution_and_rendering() {
        let img = load(&prog(), Layout::nominal()).expect("load");
        let f_addr = img.symbols.addr_of("f").expect("f");
        assert_eq!(f_addr, CODE_BASE + 24);
        let inside = img.symbols.resolve(f_addr + 4).expect("resolve");
        assert_eq!(inside.name, "f");
        assert!(img.symbols.render(f_addr).contains("(f)"));
        assert!(img.symbols.render(f_addr + 4).contains("f+0x4"));
        let lf = img.symbols.addr_of("lf").expect("lf");
        assert_eq!(lf, LIB_BASE);
    }

    #[test]
    fn regions_are_named() {
        let img = load(&prog(), Layout::nominal()).expect("load");
        let names: Vec<&str> = img.mem.regions().iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, ["code", "lib", "data", "heap", "stack"]);
        assert!(img
            .mem
            .region_of(img.initial_sp)
            .map(|r| r.name == "stack")
            .unwrap_or(false));
    }
}
