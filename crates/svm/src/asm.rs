//! Two-pass assembler for SVM guest programs.
//!
//! Programs are written in a small assembly dialect with three segments:
//! `.text` (application code), `.lib` (shared library code — mapped at its
//! own randomized base so that library-relative analysis results such as
//! "overflow in `strcat` called from `ftp_build_title_url`" are
//! meaningful, mirroring Table 2 of the paper), and `.data`.
//!
//! The assembler emits *position-independent* output: label references are
//! recorded as relocations and patched by the [loader](crate::loader) once
//! address-space randomization has picked segment bases.
//!
//! # Examples
//!
//! ```
//! use svm::asm::assemble;
//! let prog = assemble(
//!     r#"
//! .text
//! main:
//!     movi r0, greeting
//!     call strlen_local
//!     halt
//! strlen_local:
//!     movi r1, 0
//! loop:
//!     ldb r2, [r0, 0]
//!     cmpi r2, 0
//!     jz done
//!     addi r0, r0, 1
//!     addi r1, r1, 1
//!     jmp loop
//! done:
//!     mov r0, r1
//!     ret
//! .data
//! greeting: .string "hello"
//! "#,
//! )
//! .expect("assembles");
//! assert!(prog.symbols.contains_key("main"));
//! ```

use std::collections::HashMap;

use crate::error::SvmError;
use crate::isa::{AluOp, Cond, Op, Reg, Syscall, INSN_SIZE};

/// Which segment a symbol or relocation lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seg {
    /// Application code.
    Text,
    /// Library code (separately randomized base).
    Lib,
    /// Initialized data.
    Data,
}

/// A symbol: segment plus byte offset within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sym {
    /// Segment the symbol is defined in.
    pub seg: Seg,
    /// Byte offset within the segment.
    pub off: u32,
}

/// A pending absolute-address patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Segment containing the 4-byte slot to patch.
    pub seg: Seg,
    /// Byte offset of the 4-byte little-endian slot within that segment.
    pub slot: u32,
    /// Symbol whose final address is written (plus `addend`).
    pub symbol: String,
    /// Constant added to the symbol address.
    pub addend: i64,
}

/// An assembled, relocatable program.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Raw `.text` bytes.
    pub text: Vec<u8>,
    /// Raw `.lib` bytes.
    pub lib: Vec<u8>,
    /// Raw `.data` bytes.
    pub data: Vec<u8>,
    /// Label definitions.
    pub symbols: HashMap<String, Sym>,
    /// Pending address patches.
    pub relocs: Vec<Reloc>,
    /// Entry symbol (defaults to `main`).
    pub entry: String,
}

impl Program {
    /// The bytes of a segment.
    pub fn seg_bytes(&self, seg: Seg) -> &[u8] {
        match seg {
            Seg::Text => &self.text,
            Seg::Lib => &self.lib,
            Seg::Data => &self.data,
        }
    }

    fn seg_bytes_mut(&mut self, seg: Seg) -> &mut Vec<u8> {
        match seg {
            Seg::Text => &mut self.text,
            Seg::Lib => &mut self.lib,
            Seg::Data => &mut self.data,
        }
    }
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Operand {
    Reg(Reg),
    Imm(i64),
    Label(String, i64),
    /// `[reg, off]` or `[reg]`.
    Mem(Reg, i64),
}

struct Assembler {
    prog: Program,
    cur: Seg,
    line: usize,
}

/// Assemble SVM assembly source into a relocatable [`Program`].
pub fn assemble(src: &str) -> Result<Program, SvmError> {
    let mut a = Assembler {
        prog: Program {
            entry: "main".to_string(),
            ..Program::default()
        },
        cur: Seg::Text,
        line: 0,
    };
    for (i, raw) in src.lines().enumerate() {
        a.line = i + 1;
        a.line_pass(raw)?;
    }
    // Validate that every relocation target is defined.
    for r in &a.prog.relocs {
        if !a.prog.symbols.contains_key(&r.symbol) {
            return Err(SvmError::Asm {
                line: 0,
                msg: format!("undefined symbol `{}`", r.symbol),
            });
        }
    }
    if !a.prog.symbols.contains_key(&a.prog.entry) {
        return Err(SvmError::Asm {
            line: 0,
            msg: format!("entry symbol `{}` not defined", a.prog.entry),
        });
    }
    Ok(a.prog)
}

impl Assembler {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, SvmError> {
        Err(SvmError::Asm {
            line: self.line,
            msg: msg.into(),
        })
    }

    fn line_pass(&mut self, raw: &str) -> Result<(), SvmError> {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            return Ok(());
        }
        let mut rest = line;
        // Leading labels (possibly several).
        while let Some(colon) = find_label_colon(rest) {
            let (label, tail) = rest.split_at(colon);
            let label = label.trim();
            if !is_ident(label) {
                return self.err(format!("bad label `{label}`"));
            }
            let off = self.prog.seg_bytes(self.cur).len() as u32;
            if self
                .prog
                .symbols
                .insert(label.to_string(), Sym { seg: self.cur, off })
                .is_some()
            {
                return self.err(format!("duplicate label `{label}`"));
            }
            rest = tail[1..].trim();
        }
        if rest.is_empty() {
            return Ok(());
        }
        if let Some(dir) = rest.strip_prefix('.') {
            return self.directive(dir);
        }
        self.instruction(rest)
    }

    fn directive(&mut self, dir: &str) -> Result<(), SvmError> {
        let (name, args) = match dir.find(char::is_whitespace) {
            Some(i) => (&dir[..i], dir[i..].trim()),
            None => (dir, ""),
        };
        match name {
            "text" => self.cur = Seg::Text,
            "lib" => self.cur = Seg::Lib,
            "data" => self.cur = Seg::Data,
            "entry" => {
                if !is_ident(args) {
                    return self.err("bad .entry symbol");
                }
                self.prog.entry = args.to_string();
            }
            "string" => {
                let mut bytes = self.parse_string(args)?;
                bytes.push(0);
                self.emit_data(&bytes);
            }
            "ascii" => {
                let bytes = self.parse_string(args)?;
                self.emit_data(&bytes);
            }
            "space" => {
                let n: usize = args.parse().map_err(|_| SvmError::Asm {
                    line: self.line,
                    msg: "bad .space size".into(),
                })?;
                self.emit_data(&vec![0u8; n]);
            }
            "byte" => {
                for part in split_commas(args) {
                    let v = self.parse_int(&part)?;
                    if !(-128..=255).contains(&v) {
                        return self.err(format!("byte out of range: {v}"));
                    }
                    self.emit_data(&[v as u8]);
                }
            }
            "word" => {
                for part in split_commas(args) {
                    match self.parse_operand(&part)? {
                        Operand::Imm(v) => self.emit_data(&(v as u32).to_le_bytes()),
                        Operand::Label(sym, addend) => {
                            let slot = self.prog.seg_bytes(self.cur).len() as u32;
                            self.prog.relocs.push(Reloc {
                                seg: self.cur,
                                slot,
                                symbol: sym,
                                addend,
                            });
                            self.emit_data(&[0, 0, 0, 0]);
                        }
                        other => return self.err(format!("bad .word operand {other:?}")),
                    }
                }
            }
            other => return self.err(format!("unknown directive `.{other}`")),
        }
        Ok(())
    }

    fn emit_data(&mut self, bytes: &[u8]) {
        self.prog.seg_bytes_mut(self.cur).extend_from_slice(bytes);
    }

    fn emit_op(&mut self, op: Op, label_imm: Option<(String, i64)>) {
        let off = self.prog.seg_bytes(self.cur).len() as u32;
        if let Some((symbol, addend)) = label_imm {
            self.prog.relocs.push(Reloc {
                seg: self.cur,
                slot: off + 4,
                symbol,
                addend,
            });
        }
        let enc = op.encode();
        self.prog.seg_bytes_mut(self.cur).extend_from_slice(&enc);
        debug_assert_eq!(enc.len() as u32, INSN_SIZE);
    }

    fn instruction(&mut self, text: &str) -> Result<(), SvmError> {
        if self.cur == Seg::Data {
            return self.err("instruction in .data segment");
        }
        let (mn, args) = match text.find(char::is_whitespace) {
            Some(i) => (&text[..i], text[i..].trim()),
            None => (text, ""),
        };
        let mn = mn.to_ascii_lowercase();
        let ops: Vec<Operand> = split_commas(args)
            .into_iter()
            .map(|p| self.parse_operand(&p))
            .collect::<Result<_, _>>()?;

        let alu = |m: &str| -> Option<AluOp> {
            Some(match m {
                "add" | "addi" => AluOp::Add,
                "sub" | "subi" => AluOp::Sub,
                "mul" | "muli" => AluOp::Mul,
                "div" | "divi" => AluOp::Div,
                "rem" | "remi" => AluOp::Rem,
                "and" | "andi" => AluOp::And,
                "or" | "ori" => AluOp::Or,
                "xor" | "xori" => AluOp::Xor,
                "shl" | "shli" => AluOp::Shl,
                "shr" | "shri" => AluOp::Shr,
                _ => return None,
            })
        };
        let cond = |m: &str| -> Option<Cond> {
            Some(match m {
                "jz" | "je" => Cond::Eq,
                "jnz" | "jne" => Cond::Ne,
                "jlt" | "jb" => Cond::Lt,
                "jle" | "jbe" => Cond::Le,
                "jgt" | "ja" => Cond::Gt,
                "jge" | "jae" => Cond::Ge,
                _ => return None,
            })
        };

        match mn.as_str() {
            "nop" => self.emit_op(Op::Nop, None),
            "halt" => self.emit_op(Op::Halt, None),
            "ret" => self.emit_op(Op::Ret, None),
            "movi" => match self.two(&ops)? {
                (Operand::Reg(rd), Operand::Imm(v)) => {
                    self.emit_op(Op::MovI { rd, imm: v as u32 }, None)
                }
                (Operand::Reg(rd), Operand::Label(s, a)) => {
                    self.emit_op(Op::MovI { rd, imm: 0 }, Some((s, a)))
                }
                _ => return self.err("movi rd, imm|label"),
            },
            "mov" => match self.two(&ops)? {
                (Operand::Reg(rd), Operand::Reg(rs)) => self.emit_op(Op::Mov { rd, rs }, None),
                (Operand::Reg(rd), Operand::Imm(v)) => {
                    self.emit_op(Op::MovI { rd, imm: v as u32 }, None)
                }
                (Operand::Reg(rd), Operand::Label(s, a)) => {
                    self.emit_op(Op::MovI { rd, imm: 0 }, Some((s, a)))
                }
                _ => return self.err("mov rd, rs|imm"),
            },
            "ld" | "ldb" => match self.two(&ops)? {
                (Operand::Reg(rd), Operand::Mem(rs, off)) => {
                    let off = off as i32;
                    let op = if mn == "ld" {
                        Op::Ld { rd, rs, off }
                    } else {
                        Op::LdB { rd, rs, off }
                    };
                    self.emit_op(op, None);
                }
                _ => return self.err(format!("{mn} rd, [rs, off]")),
            },
            "st" | "stb" => match self.two(&ops)? {
                (Operand::Mem(rd, off), Operand::Reg(rs)) => {
                    let off = off as i32;
                    let op = if mn == "st" {
                        Op::St { rd, rs, off }
                    } else {
                        Op::StB { rd, rs, off }
                    };
                    self.emit_op(op, None);
                }
                _ => return self.err(format!("{mn} [rd, off], rs")),
            },
            m if alu(m).is_some() => {
                let op = alu(m).expect("checked");
                match self.three(&ops)? {
                    (Operand::Reg(rd), Operand::Reg(rs1), Operand::Reg(rs2)) => {
                        self.emit_op(Op::Alu { op, rd, rs1, rs2 }, None)
                    }
                    (Operand::Reg(rd), Operand::Reg(rs1), Operand::Imm(v)) => self.emit_op(
                        Op::AluI {
                            op,
                            rd,
                            rs1,
                            imm: v as i32,
                        },
                        None,
                    ),
                    _ => return self.err(format!("{m} rd, rs1, rs2|imm")),
                }
            }
            "cmp" => match self.two(&ops)? {
                (Operand::Reg(rs1), Operand::Reg(rs2)) => self.emit_op(Op::Cmp { rs1, rs2 }, None),
                (Operand::Reg(rs1), Operand::Imm(v)) => {
                    self.emit_op(Op::CmpI { rs1, imm: v as u32 }, None)
                }
                _ => return self.err("cmp rs1, rs2|imm"),
            },
            "cmpi" => match self.two(&ops)? {
                (Operand::Reg(rs1), Operand::Imm(v)) => {
                    self.emit_op(Op::CmpI { rs1, imm: v as u32 }, None)
                }
                _ => return self.err("cmpi rs1, imm"),
            },
            "jmp" => match self.one(&ops)? {
                Operand::Label(s, a) => self.emit_op(Op::Jmp { target: 0 }, Some((s, a))),
                Operand::Imm(v) => self.emit_op(Op::Jmp { target: v as u32 }, None),
                _ => return self.err("jmp label"),
            },
            m if cond(m).is_some() => {
                let c = cond(m).expect("checked");
                match self.one(&ops)? {
                    Operand::Label(s, a) => {
                        self.emit_op(Op::JCond { cond: c, target: 0 }, Some((s, a)))
                    }
                    Operand::Imm(v) => self.emit_op(
                        Op::JCond {
                            cond: c,
                            target: v as u32,
                        },
                        None,
                    ),
                    _ => return self.err(format!("{m} label")),
                }
            }
            "jmpr" => match self.one(&ops)? {
                Operand::Reg(rs) => self.emit_op(Op::JmpR { rs }, None),
                _ => return self.err("jmpr rs"),
            },
            "call" => match self.one(&ops)? {
                Operand::Label(s, a) => self.emit_op(Op::Call { target: 0 }, Some((s, a))),
                Operand::Imm(v) => self.emit_op(Op::Call { target: v as u32 }, None),
                _ => return self.err("call label"),
            },
            "callr" => match self.one(&ops)? {
                Operand::Reg(rs) => self.emit_op(Op::CallR { rs }, None),
                _ => return self.err("callr rs"),
            },
            "push" => match self.one(&ops)? {
                Operand::Reg(rs) => self.emit_op(Op::Push { rs }, None),
                _ => return self.err("push rs"),
            },
            "pop" => match self.one(&ops)? {
                Operand::Reg(rd) => self.emit_op(Op::Pop { rd }, None),
                _ => return self.err("pop rd"),
            },
            "sys" => {
                let name = args.trim();
                let sc = Syscall::parse(name).ok_or_else(|| SvmError::Asm {
                    line: self.line,
                    msg: format!("unknown syscall `{name}`"),
                })?;
                self.emit_op(Op::Sys { num: sc.num() }, None);
            }
            other => return self.err(format!("unknown mnemonic `{other}`")),
        }
        Ok(())
    }

    fn one(&self, ops: &[Operand]) -> Result<Operand, SvmError> {
        if ops.len() != 1 {
            return self.err(format!("expected 1 operand, got {}", ops.len()));
        }
        Ok(ops[0].clone())
    }

    fn two(&self, ops: &[Operand]) -> Result<(Operand, Operand), SvmError> {
        if ops.len() != 2 {
            return self.err(format!("expected 2 operands, got {}", ops.len()));
        }
        Ok((ops[0].clone(), ops[1].clone()))
    }

    fn three(&self, ops: &[Operand]) -> Result<(Operand, Operand, Operand), SvmError> {
        if ops.len() != 3 {
            return self.err(format!("expected 3 operands, got {}", ops.len()));
        }
        Ok((ops[0].clone(), ops[1].clone(), ops[2].clone()))
    }

    fn parse_operand(&self, s: &str) -> Result<Operand, SvmError> {
        let s = s.trim();
        if let Some(inner) = s.strip_prefix('[') {
            let inner = inner.strip_suffix(']').ok_or_else(|| SvmError::Asm {
                line: self.line,
                msg: "unclosed `[`".into(),
            })?;
            let parts = split_commas(inner);
            let (rs, off) = match parts.len() {
                1 => (parts[0].trim().to_string(), 0i64),
                2 => (
                    parts[0].trim().to_string(),
                    self.parse_int(parts[1].trim())?,
                ),
                _ => return self.err("memory operand is [reg] or [reg, off]"),
            };
            let r = Reg::parse(&rs).ok_or_else(|| SvmError::Asm {
                line: self.line,
                msg: format!("bad reg `{rs}`"),
            })?;
            return Ok(Operand::Mem(r, off));
        }
        if let Some(r) = Reg::parse(s) {
            return Ok(Operand::Reg(r));
        }
        if let Ok(v) = self.parse_int(s) {
            return Ok(Operand::Imm(v));
        }
        // label, label+N, label-N.
        let (name, addend) = if let Some(i) = s[1..].find(['+', '-']).map(|i| i + 1) {
            let (n, rest) = s.split_at(i);
            (n, self.parse_int(rest)?)
        } else {
            (s, 0)
        };
        if is_ident(name) {
            return Ok(Operand::Label(name.to_string(), addend));
        }
        self.err(format!("bad operand `{s}`"))
    }

    fn parse_int(&self, s: &str) -> Result<i64, SvmError> {
        let s = s.trim();
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        let v: i64 = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X"))
        {
            i64::from_str_radix(hex, 16).map_err(|_| SvmError::Asm {
                line: self.line,
                msg: format!("bad hex `{s}`"),
            })?
        } else if body.starts_with('\'') {
            let c =
                self.parse_string(&format!("\"{}\"", &body[1..body.len().saturating_sub(1)]))?;
            if c.len() != 1 {
                return self.err(format!("bad char literal `{s}`"));
            }
            c[0] as i64
        } else {
            body.parse().map_err(|_| SvmError::Asm {
                line: self.line,
                msg: format!("bad int `{s}`"),
            })?
        };
        Ok(if neg { -v } else { v })
    }

    fn parse_string(&self, s: &str) -> Result<Vec<u8>, SvmError> {
        let s = s.trim();
        let inner = s
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .ok_or_else(|| SvmError::Asm {
                line: self.line,
                msg: format!("bad string `{s}`"),
            })?;
        let mut out = Vec::new();
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                let esc = chars.next().ok_or_else(|| SvmError::Asm {
                    line: self.line,
                    msg: "dangling \\".into(),
                })?;
                out.push(match esc {
                    'n' => b'\n',
                    'r' => b'\r',
                    't' => b'\t',
                    '0' => 0,
                    '\\' => b'\\',
                    '"' => b'"',
                    '\'' => b'\'',
                    other => {
                        return self.err(format!("bad escape `\\{other}`"));
                    }
                });
            } else {
                let mut buf = [0u8; 4];
                out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
            }
        }
        Ok(out)
    }
}

fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut in_char = false;
    let mut prev_escape = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_escape && !in_char => in_str = !in_str,
            '\'' if !prev_escape && !in_str => in_char = !in_char,
            ';' | '#' if !in_str && !in_char => return &line[..i],
            _ => {}
        }
        prev_escape = c == '\\' && !prev_escape;
    }
    line
}

/// Find the colon ending a leading label, ignoring colons in strings.
fn find_label_colon(s: &str) -> Option<usize> {
    let candidate = s.find(':')?;
    // A label must be a bare identifier before the colon.
    if is_ident(s[..candidate].trim()) {
        Some(candidate)
    } else {
        None
    }
}

fn is_ident(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .next()
            .map(|c| c.is_ascii_alphabetic() || c == '_')
            .unwrap_or(false)
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Split on top-level commas (not inside brackets or strings).
fn split_commas(s: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '[' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            ']' if !in_str => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 && !in_str => {
                parts.push(cur.trim().to_string());
                cur = String::new();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        parts.push(cur.trim().to_string());
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;

    fn decode_at(prog: &Program, seg: Seg, idx: usize) -> Op {
        let bytes = prog.seg_bytes(seg);
        let mut w = [0u8; 8];
        w.copy_from_slice(&bytes[idx * 8..idx * 8 + 8]);
        Op::decode(w, 0).expect("decode")
    }

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            "
.text
main:
    movi r0, 0x10
    addi r1, r0, -4
    halt
",
        )
        .expect("ok");
        assert_eq!(p.text.len(), 24);
        assert_eq!(
            decode_at(&p, Seg::Text, 0),
            Op::MovI {
                rd: Reg(0),
                imm: 0x10
            }
        );
        assert_eq!(
            decode_at(&p, Seg::Text, 1),
            Op::AluI {
                op: AluOp::Add,
                rd: Reg(1),
                rs1: Reg(0),
                imm: -4
            }
        );
        assert_eq!(decode_at(&p, Seg::Text, 2), Op::Halt);
    }

    #[test]
    fn labels_generate_relocs() {
        let p = assemble(
            "
.text
main:
    movi r0, msg
    call f
    jmp main
f:
    ret
.data
msg: .string \"hi\"
",
        )
        .expect("ok");
        assert_eq!(p.relocs.len(), 3);
        assert_eq!(
            p.symbols["msg"],
            Sym {
                seg: Seg::Data,
                off: 0
            }
        );
        assert_eq!(
            p.symbols["f"],
            Sym {
                seg: Seg::Text,
                off: 24
            }
        );
        assert_eq!(p.data, b"hi\0");
    }

    #[test]
    fn rejects_undefined_symbol() {
        let e = assemble(".text\nmain:\n jmp nowhere\n").unwrap_err();
        assert!(e.to_string().contains("nowhere"));
    }

    #[test]
    fn rejects_missing_entry() {
        let e = assemble(".text\nstart:\n halt\n").unwrap_err();
        assert!(e.to_string().contains("main"));
        assert!(assemble(".entry start\n.text\nstart:\n halt\n").is_ok());
    }

    #[test]
    fn rejects_duplicate_label() {
        let e = assemble(".text\nmain:\nmain:\n halt\n").unwrap_err();
        assert!(e.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_instructions_in_data() {
        let e = assemble(".data\nmain:\n movi r0, 1\n").unwrap_err();
        assert!(e.to_string().contains(".data"));
    }

    #[test]
    fn memory_operands() {
        let p = assemble(".text\nmain:\n ld r1, [fp, -8]\n st [sp, 4], r2\n ldb r3, [r4]\n halt\n")
            .expect("ok");
        assert_eq!(
            decode_at(&p, Seg::Text, 0),
            Op::Ld {
                rd: Reg(1),
                rs: Reg::FP,
                off: -8
            }
        );
        assert_eq!(
            decode_at(&p, Seg::Text, 1),
            Op::St {
                rd: Reg::SP,
                rs: Reg(2),
                off: 4
            }
        );
        assert_eq!(
            decode_at(&p, Seg::Text, 2),
            Op::LdB {
                rd: Reg(3),
                rs: Reg(4),
                off: 0
            }
        );
    }

    #[test]
    fn string_escapes_and_char_literals() {
        let p = assemble(".text\nmain:\n cmpi r0, 'a'\n halt\n.data\ns: .string \"a\\n\\0b\"\n")
            .expect("ok");
        assert_eq!(p.data, b"a\n\0b\0");
        assert_eq!(
            decode_at(&p, Seg::Text, 0),
            Op::CmpI {
                rs1: Reg(0),
                imm: b'a' as u32
            }
        );
    }

    #[test]
    fn word_directive_with_labels() {
        let p = assemble(
            ".text\nmain:\n halt\n.data\ntbl: .word 1, main, 0x10\nx: .byte 1, 2\n.space 3\n",
        )
        .expect("ok");
        assert_eq!(p.data.len(), 4 * 3 + 2 + 3);
        assert_eq!(&p.data[0..4], &1u32.to_le_bytes());
        let r = &p.relocs[0];
        assert_eq!((r.seg, r.slot, r.symbol.as_str()), (Seg::Data, 4, "main"));
    }

    #[test]
    fn label_plus_offset() {
        let p =
            assemble(".text\nmain:\n movi r0, buf+8\n halt\n.data\nbuf: .space 16\n").expect("ok");
        assert_eq!(p.relocs[0].addend, 8);
    }

    #[test]
    fn lib_segment_and_comments() {
        let p = assemble(
            "; comment\n.text\nmain: call helper ; tail comment\n halt\n.lib\nhelper:\n ret # other comment style\n",
        )
        .expect("ok");
        assert_eq!(p.symbols["helper"].seg, Seg::Lib);
        assert_eq!(p.lib.len(), 8);
    }

    #[test]
    fn sys_mnemonics() {
        let p = assemble(".text\nmain:\n sys read\n sys exit\n").expect("ok");
        assert_eq!(
            decode_at(&p, Seg::Text, 0),
            Op::Sys {
                num: Syscall::Read.num()
            }
        );
        assert_eq!(
            decode_at(&p, Seg::Text, 1),
            Op::Sys {
                num: Syscall::Exit.num()
            }
        );
        assert!(assemble(".text\nmain:\n sys bogus\n").is_err());
    }
}
