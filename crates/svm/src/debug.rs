//! Machine-state dumps for forensic output and debugging.
//!
//! Renders the architectural state — registers, a stack window, the
//! region table, allocator statistics, and a disassembly window around
//! the program counter — as the textual "core dump" a human reads next
//! to the automated analyses.

use crate::disasm::crash_context;
use crate::isa::Reg;
use crate::machine::Machine;

/// Render the register file.
pub fn dump_registers(m: &Machine) -> String {
    let mut s = String::new();
    for chunk in (0..13u8).collect::<Vec<_>>().chunks(4) {
        for &r in chunk {
            s.push_str(&format!("r{r:<2} = {:#010x}  ", m.cpu.get(Reg(r))));
        }
        s.push('\n');
    }
    s.push_str(&format!(
        "fp  = {:#010x}  sp  = {:#010x}  pc  = {:#010x}  flags = z:{} b:{}\n",
        m.cpu.fp(),
        m.cpu.sp(),
        m.cpu.pc,
        m.cpu.flags.zero as u8,
        m.cpu.flags.below as u8,
    ));
    s
}

/// Render a window of stack words around `sp`, annotating values that
/// point into loaded segments.
pub fn dump_stack(m: &Machine, words: usize) -> String {
    let sp = m.cpu.sp();
    let mut s = String::new();
    for i in 0..words as u32 {
        let addr = sp.wrapping_add(i * 4);
        let Ok(v) = m.mem.read_u32(0, addr) else {
            break;
        };
        let note = if m.symbols.in_bounds(v) {
            format!("  -> {}", m.symbols.render(v))
        } else {
            String::new()
        };
        s.push_str(&format!(
            "[sp+{:<3}] {addr:#010x}: {v:#010x}{note}\n",
            i * 4
        ));
    }
    s
}

/// Render the memory map.
pub fn dump_regions(m: &Machine) -> String {
    let mut s = String::new();
    for r in m.mem.regions() {
        s.push_str(&format!(
            "{:#010x}-{:#010x} {}{}{} {}\n",
            r.start,
            r.end(),
            if r.perm.r { 'r' } else { '-' },
            if r.perm.w { 'w' } else { '-' },
            if r.perm.x { 'x' } else { '-' },
            r.name,
        ));
    }
    s
}

/// The full forensic dump: registers, code context, stack, regions, heap.
pub fn dump(m: &Machine) -> String {
    let mut s = String::new();
    s.push_str("-- registers --\n");
    s.push_str(&dump_registers(m));
    s.push_str("-- code --\n");
    s.push_str(&crash_context(&m.mem, &m.symbols, m.cpu.pc, 2, 2));
    s.push_str("-- stack --\n");
    s.push_str(&dump_stack(m, 8));
    s.push_str("-- regions --\n");
    s.push_str(&dump_regions(m));
    let (chunks, ok) = m.heap.walk(&m.mem);
    s.push_str(&format!(
        "-- heap -- {} chunks, boundary tags {}; {} allocs, {} frees\n",
        chunks.len(),
        if ok { "consistent" } else { "INCONSISTENT" },
        m.heap.allocs,
        m.heap.frees,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::loader::Aslr;
    use crate::NopHook;

    fn machine() -> Machine {
        let prog = assemble(
            ".text\nmain:\n movi r5, 0x1234\n movi r0, 32\n sys alloc\n call f\n halt\nf:\n ret\n",
        )
        .expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        m.run(&mut NopHook, 10_000);
        m
    }

    #[test]
    fn register_dump_shows_values() {
        let m = machine();
        let d = dump_registers(&m);
        assert!(d.contains("0x00001234"), "{d}");
        assert!(d.contains("pc  ="));
    }

    #[test]
    fn full_dump_has_all_sections() {
        let m = machine();
        let d = dump(&m);
        for section in [
            "-- registers --",
            "-- code --",
            "-- stack --",
            "-- regions --",
            "-- heap --",
        ] {
            assert!(d.contains(section), "missing {section}:\n{d}");
        }
        assert!(d.contains("code") && d.contains("heap") && d.contains("stack"));
        assert!(d.contains("1 allocs"));
    }

    #[test]
    fn stack_dump_annotates_code_pointers() {
        // Stop inside f: the return address into main sits at [sp].
        let prog = assemble(".text\nmain:\n call f\n halt\nf:\n nop\n ret\n").expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        m.step(); // call
        let d = dump_stack(&m, 2);
        assert!(d.contains("-> "), "return address annotated: {d}");
        assert!(d.contains("main+"), "{d}");
    }
}
