//! The guest "libc": string/memory routines in SVM assembly.
//!
//! Placed in the `.lib` segment so they load at the separately-randomized
//! library base, mirroring the paper's analysis output where the Squid
//! overflow is attributed to "`0x4f0f0907` in library `strcat`, called by
//! `ftpBuildTitleUrl`". `strcpy`/`strcat` are deliberately unbounded —
//! they are the vulnerable copy primitives the evaluated CVEs abused.
//!
//! Calling convention: arguments in `r0..r3`, result in `r0`; `r0..r3`
//! are caller-saved, `r4..r12`/`fp` callee-saved.

/// Assembly source of the guest standard library (`.lib` segment).
///
/// Append this to an application's source before assembling:
///
/// ```
/// use svm::{asm::assemble, stdlib::LIB_ASM};
/// let src = format!(".text\nmain:\n movi r0, s\n call strlen\n halt\n.data\ns: .string \"abcd\"\n{LIB_ASM}");
/// let prog = assemble(&src).expect("assembles");
/// assert!(prog.symbols.contains_key("strcat"));
/// ```
pub const LIB_ASM: &str = r#"
.lib
; --- strlen(s) -> len -------------------------------------------------
strlen:
    mov r1, r0
    movi r0, 0
strlen_loop:
    ldb r2, [r1, 0]
    cmpi r2, 0
    jz strlen_done
    addi r0, r0, 1
    addi r1, r1, 1
    jmp strlen_loop
strlen_done:
    ret

; --- strcpy(dst, src) -> dst  (UNBOUNDED, vulnerable by design) -------
strcpy:
    push r4
    mov r4, r0
strcpy_loop:
    ldb r3, [r1, 0]
    stb [r0, 0], r3
    cmpi r3, 0
    jz strcpy_done
    addi r0, r0, 1
    addi r1, r1, 1
    jmp strcpy_loop
strcpy_done:
    mov r0, r4
    pop r4
    ret

; --- strcat(dst, src) -> dst  (UNBOUNDED, the Squid CVE path) ---------
strcat:
    push r4
    mov r4, r0
strcat_seek:
    ldb r2, [r0, 0]
    cmpi r2, 0
    jz strcat_copy
    addi r0, r0, 1
    jmp strcat_seek
strcat_copy:
    ldb r2, [r1, 0]
    stb [r0, 0], r2
    cmpi r2, 0
    jz strcat_done
    addi r0, r0, 1
    addi r1, r1, 1
    jmp strcat_copy
strcat_done:
    mov r0, r4
    pop r4
    ret

; --- memcpy(dst, src, n) -> dst ---------------------------------------
memcpy:
    push r4
    mov r4, r0
memcpy_loop:
    cmpi r2, 0
    jz memcpy_done
    ldb r3, [r1, 0]
    stb [r0, 0], r3
    addi r0, r0, 1
    addi r1, r1, 1
    subi r2, r2, 1
    jmp memcpy_loop
memcpy_done:
    mov r0, r4
    pop r4
    ret

; --- memset(dst, c, n) -> dst ------------------------------------------
memset:
    push r4
    mov r4, r0
memset_loop:
    cmpi r2, 0
    jz memset_done
    stb [r0, 0], r1
    addi r0, r0, 1
    subi r2, r2, 1
    jmp memset_loop
memset_done:
    mov r0, r4
    pop r4
    ret

; --- strncpy(dst, src, n) -> dst (bounded, NUL-pads like libc) --------
strncpy:
    push r4
    mov r4, r0
strncpy_loop:
    cmpi r2, 0
    jz strncpy_done
    ldb r3, [r1, 0]
    stb [r0, 0], r3
    addi r0, r0, 1
    subi r2, r2, 1
    cmpi r3, 0
    jz strncpy_pad
    addi r1, r1, 1
    jmp strncpy_loop
strncpy_pad:
    cmpi r2, 0
    jz strncpy_done
    movi r3, 0
    stb [r0, 0], r3
    addi r0, r0, 1
    subi r2, r2, 1
    jmp strncpy_pad
strncpy_done:
    mov r0, r4
    pop r4
    ret

; --- memcmp(a, b, n) -> 0 eq / 1 gt / -1 lt ------------------------------
memcmp:
    push r4
memcmp_loop:
    cmpi r2, 0
    jz memcmp_eq
    ldb r3, [r0, 0]
    ldb r4, [r1, 0]
    cmp r3, r4
    jne memcmp_diff
    addi r0, r0, 1
    addi r1, r1, 1
    subi r2, r2, 1
    jmp memcmp_loop
memcmp_eq:
    movi r0, 0
    pop r4
    ret
memcmp_diff:
    jlt memcmp_lt
    movi r0, 1
    pop r4
    ret
memcmp_lt:
    movi r0, -1
    pop r4
    ret

; --- strcmp(a, b) -> 0 eq / 1 gt / -1 lt --------------------------------
strcmp:
strcmp_loop:
    ldb r2, [r0, 0]
    ldb r3, [r1, 0]
    cmp r2, r3
    jne strcmp_diff
    cmpi r2, 0
    jz strcmp_eq
    addi r0, r0, 1
    addi r1, r1, 1
    jmp strcmp_loop
strcmp_eq:
    movi r0, 0
    ret
strcmp_diff:
    jlt strcmp_lt
    movi r0, 1
    ret
strcmp_lt:
    movi r0, -1
    ret

; --- strncmp(a, b, n) -> 0 eq / 1 ne ------------------------------------
strncmp:
    push r4
strncmp_loop:
    cmpi r2, 0
    jz strncmp_eq
    ldb r3, [r0, 0]
    ldb r4, [r1, 0]
    cmp r3, r4
    jne strncmp_ne
    cmpi r3, 0
    jz strncmp_eq
    addi r0, r0, 1
    addi r1, r1, 1
    subi r2, r2, 1
    jmp strncmp_loop
strncmp_eq:
    movi r0, 0
    pop r4
    ret
strncmp_ne:
    movi r0, 1
    pop r4
    ret

; --- strchr(s, c) -> ptr or 0 --------------------------------------------
strchr:
strchr_loop:
    ldb r2, [r0, 0]
    cmp r2, r1
    je strchr_found
    cmpi r2, 0
    jz strchr_nf
    addi r0, r0, 1
    jmp strchr_loop
strchr_found:
    ret
strchr_nf:
    movi r0, 0
    ret

; --- parse_uint(s) -> value (stops at first non-digit) -------------------
parse_uint:
    mov r1, r0
    movi r0, 0
parse_uint_loop:
    ldb r2, [r1, 0]
    cmpi r2, '0'
    jlt parse_uint_done
    cmpi r2, '9'
    jgt parse_uint_done
    movi r3, 10
    mul r0, r0, r3
    subi r2, r2, '0'
    add r0, r0, r2
    addi r1, r1, 1
    jmp parse_uint_loop
parse_uint_done:
    ret

; --- write_cstr(conn, s) -> bytes written --------------------------------
write_cstr:
    push r4
    push r5
    mov r4, r0
    mov r5, r1
    mov r0, r1
    call strlen
    mov r2, r0
    mov r0, r4
    mov r1, r5
    sys write
    pop r5
    pop r4
    ret
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::hook::NopHook;
    use crate::loader::Aslr;
    use crate::machine::{Machine, Status};

    fn run_lib(main: &str, data: &str) -> Machine {
        let src = format!(".text\nmain:\n{main}\n.data\n{data}\n{LIB_ASM}");
        let prog = assemble(&src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        match m.run(&mut NopHook, 50_000_000) {
            Status::Halted(_) => m,
            other => panic!("did not halt: {other:?}"),
        }
    }

    fn r0(m: &Machine) -> u32 {
        m.cpu.get(crate::isa::Reg::R0)
    }

    #[test]
    fn strlen_works() {
        let m = run_lib("movi r0, s\ncall strlen\nhalt", "s: .string \"hello!\"");
        assert_eq!(r0(&m), 6);
        let m = run_lib("movi r0, s\ncall strlen\nhalt", "s: .string \"\"");
        assert_eq!(r0(&m), 0);
    }

    #[test]
    fn strcpy_copies_and_returns_dst() {
        let m = run_lib(
            "movi r0, dst\nmovi r1, src\ncall strcpy\nhalt",
            "src: .string \"copy me\"\ndst: .space 32",
        );
        let dst = m.symbols.addr_of("dst").expect("dst");
        assert_eq!(r0(&m), dst);
        assert_eq!(m.mem.read_cstr(dst, 32).expect("read"), b"copy me");
    }

    #[test]
    fn strcat_appends() {
        let m = run_lib(
            "movi r0, dst\nmovi r1, a\ncall strcpy\nmovi r0, dst\nmovi r1, b\ncall strcat\nhalt",
            "a: .string \"foo\"\nb: .string \"bar\"\ndst: .space 32",
        );
        let dst = m.symbols.addr_of("dst").expect("dst");
        assert_eq!(m.mem.read_cstr(dst, 32).expect("read"), b"foobar");
    }

    #[test]
    fn memcpy_memset() {
        let m = run_lib(
            "movi r0, dst\nmovi r1, 'x'\nmovi r2, 4\ncall memset\nmovi r0, dst\nmovi r1, src\nmovi r2, 2\ncall memcpy\nhalt",
            "src: .string \"AB\"\ndst: .space 8",
        );
        let dst = m.symbols.addr_of("dst").expect("dst");
        assert_eq!(m.mem.read_bytes(dst, 4).expect("read"), b"ABxx");
    }

    #[test]
    fn strncpy_bounds_and_pads() {
        let m = run_lib(
            "movi r0, dst\nmovi r1, src\nmovi r2, 8\ncall strncpy\nhalt",
            "src: .string \"hi\"\ndst: .byte 'x','x','x','x','x','x','x','x','x'",
        );
        let dst = m.symbols.addr_of("dst").expect("dst");
        // Copied "hi", then NUL-padded to n=8; byte 8 untouched.
        assert_eq!(m.mem.read_bytes(dst, 9).expect("r"), b"hi\0\0\0\0\0\0x");
        // Truncating copy: no terminator, exactly n bytes.
        let m = run_lib(
            "movi r0, dst\nmovi r1, src\nmovi r2, 3\ncall strncpy\nhalt",
            "src: .string \"abcdef\"\ndst: .byte 'x','x','x','x'",
        );
        let dst = m.symbols.addr_of("dst").expect("dst");
        assert_eq!(m.mem.read_bytes(dst, 4).expect("r"), b"abcx");
    }

    #[test]
    fn memcmp_orders_bytes() {
        let m = run_lib(
            "movi r0, a\nmovi r1, b\nmovi r2, 4\ncall memcmp\nhalt",
            "a: .byte 1, 2, 3, 4\nb: .byte 1, 2, 3, 4",
        );
        assert_eq!(r0(&m), 0);
        let m = run_lib(
            "movi r0, a\nmovi r1, b\nmovi r2, 4\ncall memcmp\nhalt",
            "a: .byte 1, 2, 9, 4\nb: .byte 1, 2, 3, 4",
        );
        assert_eq!(r0(&m), 1);
        let m = run_lib(
            "movi r0, a\nmovi r1, b\nmovi r2, 2\ncall memcmp\nhalt",
            "a: .byte 1, 2, 9, 4\nb: .byte 1, 2, 3, 4",
        );
        assert_eq!(r0(&m), 0, "comparison bounded at n");
    }

    #[test]
    fn strcmp_orders() {
        let m = run_lib(
            "movi r0, a\nmovi r1, b\ncall strcmp\nhalt",
            "a: .string \"abc\"\nb: .string \"abc\"",
        );
        assert_eq!(r0(&m), 0);
        let m = run_lib(
            "movi r0, a\nmovi r1, b\ncall strcmp\nhalt",
            "a: .string \"abd\"\nb: .string \"abc\"",
        );
        assert_eq!(r0(&m), 1);
        let m = run_lib(
            "movi r0, a\nmovi r1, b\ncall strcmp\nhalt",
            "a: .string \"ab\"\nb: .string \"abc\"",
        );
        assert_eq!(r0(&m), u32::MAX);
    }

    #[test]
    fn strncmp_prefix() {
        let m = run_lib(
            "movi r0, a\nmovi r1, b\nmovi r2, 4\ncall strncmp\nhalt",
            "a: .string \"GET /x\"\nb: .string \"GET \"",
        );
        // Compares only 4 bytes; but b ends at 4 -> equal over the prefix.
        assert_eq!(r0(&m), 0);
        let m = run_lib(
            "movi r0, a\nmovi r1, b\nmovi r2, 4\ncall strncmp\nhalt",
            "a: .string \"POST\"\nb: .string \"GET \"",
        );
        assert_eq!(r0(&m), 1);
    }

    #[test]
    fn strchr_finds() {
        let m = run_lib(
            "movi r0, s\nmovi r1, '/'\ncall strchr\nhalt",
            "s: .string \"GET /index\"",
        );
        let s = m.symbols.addr_of("s").expect("s");
        assert_eq!(r0(&m), s + 4);
        let m = run_lib(
            "movi r0, s\nmovi r1, 'z'\ncall strchr\nhalt",
            "s: .string \"abc\"",
        );
        assert_eq!(r0(&m), 0);
    }

    #[test]
    fn parse_uint_parses() {
        let m = run_lib("movi r0, s\ncall parse_uint\nhalt", "s: .string \"1234x\"");
        assert_eq!(r0(&m), 1234);
        let m = run_lib("movi r0, s\ncall parse_uint\nhalt", "s: .string \"x\"");
        assert_eq!(r0(&m), 0);
    }

    #[test]
    fn write_cstr_sends() {
        let src = format!(
            ".text\nmain:\n sys accept\n movi r1, s\n call write_cstr\n halt\n.data\ns: .string \"hi there\"\n{LIB_ASM}"
        );
        let prog = assemble(&src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        m.net.push_connection(Vec::new());
        match m.run(&mut NopHook, 10_000_000) {
            Status::Halted(_) => {}
            other => panic!("{other:?}"),
        }
        assert_eq!(m.net.conn(0).expect("c").output, b"hi there");
    }

    #[test]
    fn stdlib_lands_in_lib_segment() {
        let src = format!(".text\nmain:\n halt\n{LIB_ASM}");
        let prog = assemble(&src).expect("asm");
        let m = Machine::boot(&prog, Aslr::off()).expect("boot");
        let strcat = m.symbols.addr_of("strcat").expect("strcat");
        assert!(m
            .mem
            .region_of(strcat)
            .map(|r| r.name == "lib")
            .unwrap_or(false));
    }
}
