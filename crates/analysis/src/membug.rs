//! Dynamic memory-bug detection (paper §3.2, second analysis step).
//!
//! Attached to a *replay from a checkpoint*, the detector watches for the
//! three bug classes the paper targets: stack smashing (writes to
//! recorded return-address slots), heap overflow (writes outside any
//! live chunk's payload, via the allocator's own inline metadata — the
//! "modified red-zone technique"), and double free. Pre-existing state is
//! inferred exactly as the paper describes: stack frames from the frame
//! pointer, heap buffers from the boundary tags in the checkpoint image.

use std::any::Any;
use std::collections::BTreeMap;

use dbi::tool::{Tool, Watch};
use svm::alloc::FreeKind;
use svm::isa::Op;
use svm::Machine;

use crate::callstack::ShadowStack;

/// The kind of memory bug found.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemBugKind {
    /// A write landed on a recorded return-address slot.
    StackSmash,
    /// A write landed outside every live chunk payload (metadata or
    /// unallocated heap space).
    HeapOverflow,
    /// `free` of an already-free pointer.
    DoubleFree,
    /// A write into a freed chunk's payload.
    DanglingWrite,
}

/// One detected memory bug.
#[derive(Debug, Clone)]
pub struct MemBugFinding {
    /// Bug class.
    pub kind: MemBugKind,
    /// The instruction (or allocator callsite) responsible.
    pub pc: u32,
    /// The address or pointer involved.
    pub addr: u32,
    /// A pc inside the calling function, for one-frame-up attribution.
    pub caller_pc: Option<u32>,
}

/// The memory-bug detection tool.
pub struct MemBugDetector {
    shadow: ShadowStack,
    /// Live chunks: payload start -> payload length.
    live: BTreeMap<u32, u32>,
    /// Freed chunks: payload start -> payload length.
    freed: BTreeMap<u32, u32>,
    /// Watched return-address slots: slot -> owning function entry.
    ret_slots: BTreeMap<u32, u32>,
    /// Heap region bounds.
    heap: (u32, u32),
    /// Current break (writes between live chunks and brk are overflows;
    /// writes past brk into the mapped-but-virgin region are too).
    findings: Vec<MemBugFinding>,
}

impl MemBugDetector {
    /// Create a detector, seeding pre-existing state from the machine
    /// image (the state at the checkpoint being replayed).
    pub fn attach_to(m: &Machine) -> MemBugDetector {
        let mut live = BTreeMap::new();
        let mut freed = BTreeMap::new();
        // Paper: "Buffers allocated prior to the checkpoint are inferred
        // from the memory image at the checkpoint."
        let (chunks, _ok) = m.heap.walk(&m.mem);
        for (c, size, in_use) in chunks {
            let pay = c + svm::alloc::HEADER_SIZE;
            let len = size - svm::alloc::HEADER_SIZE;
            if in_use {
                live.insert(pay, len);
            } else {
                freed.insert(pay, len);
            }
        }
        // Paper: "Pre-existing stack frames are inferred from the stack
        // frame base pointer register (ebp)."
        let mut ret_slots = BTreeMap::new();
        let mut fp = m.cpu.fp();
        let stack_base = m.layout.stack_top - m.layout.stack_size;
        for _ in 0..64 {
            if fp < stack_base || fp >= m.layout.stack_top - 16 || !fp.is_multiple_of(4) {
                break;
            }
            let Ok(saved) = m.mem.read_u32(0, fp) else {
                break;
            };
            let Ok(ret) = m.mem.read_u32(0, fp + 4) else {
                break;
            };
            if !m.symbols.in_bounds(ret) || saved <= fp {
                break;
            }
            ret_slots.insert(fp + 4, 0);
            fp = saved;
        }
        MemBugDetector {
            shadow: ShadowStack::new(),
            live,
            freed,
            ret_slots,
            heap: (m.layout.heap_base, m.layout.heap_base + m.layout.heap_size),
            findings: Vec::new(),
        }
    }

    /// All findings so far, in detection order.
    pub fn findings(&self) -> &[MemBugFinding] {
        &self.findings
    }

    /// The first finding of a given kind.
    pub fn first_of(&self, kind: MemBugKind) -> Option<&MemBugFinding> {
        self.findings.iter().find(|f| f.kind == kind)
    }

    fn in_heap(&self, addr: u32) -> bool {
        addr >= self.heap.0 && addr < self.heap.1
    }

    /// Whether `addr` is inside a map entry's payload.
    fn containing(map: &BTreeMap<u32, u32>, addr: u32) -> Option<(u32, u32)> {
        map.range(..=addr).next_back().and_then(|(&pay, &len)| {
            if addr < pay + len {
                Some((pay, len))
            } else {
                None
            }
        })
    }

    fn record(&mut self, kind: MemBugKind, pc: u32, addr: u32) {
        // One finding per (kind, pc): a copy loop revisits the same
        // overflowing store thousands of times.
        if self.findings.iter().any(|f| f.kind == kind && f.pc == pc) {
            return;
        }
        let caller_pc = self.shadow.caller_pc();
        self.findings.push(MemBugFinding {
            kind,
            pc,
            addr,
            caller_pc,
        });
    }
}

impl Tool for MemBugDetector {
    fn name(&self) -> &str {
        "memory-bug-detector"
    }

    fn watches(&self) -> Watch {
        Watch::All
    }

    fn insn_cost(&self) -> u64 {
        // Paper band: memory-bug detection is ~20x-40x.
        25
    }

    fn on_insn(&mut self, _m: &Machine, _pc: u32, _op: &Op) {}

    fn on_mem_write(&mut self, _m: &Machine, pc: u32, addr: u32, size: u8, _val: u32) {
        // Stack smashing: does this write overlap a watched ret slot?
        let lo = addr;
        let hi = addr.wrapping_add(size as u32);
        let overlapping: Vec<u32> = self
            .ret_slots
            .range(lo.saturating_sub(3)..hi)
            .map(|(&slot, _)| slot)
            .filter(|&slot| lo < slot + 4 && slot < hi)
            .collect();
        for slot in overlapping {
            self.record(MemBugKind::StackSmash, pc, slot);
        }
        // Heap discipline: writes inside the heap must hit a live payload.
        if self.in_heap(addr) {
            if Self::containing(&self.live, addr).is_some() {
                return;
            }
            if Self::containing(&self.freed, addr).is_some() {
                self.record(MemBugKind::DanglingWrite, pc, addr);
            } else {
                self.record(MemBugKind::HeapOverflow, pc, addr);
            }
        }
    }

    fn on_call(&mut self, _m: &Machine, _pc: u32, target: u32, ret_addr: u32, sp: u32) {
        self.shadow.push(target, ret_addr, sp);
        self.ret_slots.insert(sp, target);
    }

    fn on_ret(&mut self, _m: &Machine, _pc: u32, _ret_target: u32, sp: u32) {
        self.shadow.pop_to(sp);
        // Retire every watched slot at or below the popped one.
        let dead: Vec<u32> = self.ret_slots.range(..=sp).map(|(&s, _)| s).collect();
        for s in dead {
            self.ret_slots.remove(&s);
        }
    }

    fn on_alloc(&mut self, _m: &Machine, _pc: u32, size: u32, ptr: u32) {
        // Chunk payloads may be larger than the request after first-fit
        // reuse; track the requested size (red zone starts right after).
        self.freed.remove(&ptr);
        // Remove any freed entry this allocation carves into.
        let stale: Vec<u32> = self
            .freed
            .range(ptr..ptr + size.max(16))
            .map(|(&p, _)| p)
            .collect();
        for s in stale {
            self.freed.remove(&s);
        }
        self.live.insert(ptr, size.max(16));
    }

    fn on_free(&mut self, _m: &Machine, pc: u32, ptr: u32, kind: FreeKind) {
        if kind == FreeKind::DoubleFree || !self.live.contains_key(&ptr) {
            self.record(MemBugKind::DoubleFree, pc, ptr);
        }
        if let Some(len) = self.live.remove(&ptr) {
            self.freed.insert(ptr, len);
        } else {
            self.freed.entry(ptr).or_insert(16);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi::instr::Instrumenter;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::stdlib::LIB_ASM;
    use svm::Machine;

    fn run_with_detector2(src: &str, input: &[u8]) -> (Machine, Vec<MemBugFinding>) {
        let prog = assemble(src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        m.net.push_connection(input.to_vec());
        let det = MemBugDetector::attach_to(&m);
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(det));
        m.run(&mut ins, 400_000_000);
        let findings = ins
            .get::<MemBugDetector>(id)
            .expect("tool")
            .findings()
            .to_vec();
        (m, findings)
    }

    fn first_of(findings: &[MemBugFinding], kind: MemBugKind) -> Option<&MemBugFinding> {
        findings.iter().find(|f| f.kind == kind)
    }

    #[test]
    fn detects_stack_smash_with_store_pc() {
        let src = format!(
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 64
    sys read
    call victim
    halt
victim:
    push fp
    mov fp, sp
    movi r1, buf
    ld r1, [r1, 0]
overwrite:
    st [fp, 4], r1
    mov sp, fp
    pop fp
    ret
.data
buf: .space 64
{LIB_ASM}
"
        );
        let (m, det) = run_with_detector2(&src, &0x6666_6666u32.to_le_bytes());
        let f = first_of(&det, MemBugKind::StackSmash).expect("finding");
        assert_eq!(m.symbols.resolve(f.pc).expect("sym").name, "overwrite");
        // Caller attribution: victim was called from main.
        let caller = f.caller_pc.expect("caller");
        assert_eq!(m.symbols.resolve(caller).expect("sym").name, "main");
    }

    #[test]
    fn detects_heap_overflow_in_strcat_with_caller() {
        // A strcat overflowing a heap buffer — the Squid pattern.
        let src = format!(
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 128
    sys read
    call build
    halt
build:
    push r4
    movi r0, 16
    call malloc
    mov r4, r0
    movi r0, 16
    call malloc
    mov r0, r4
    movi r1, buf
    call strcat
    pop r4
    ret
.data
buf: .space 136
{LIB_ASM}
.lib
malloc:
    sys alloc
    ret
free:
    sys free
    ret
"
        );
        let long = vec![b'Z'; 64];
        let (m, det) = run_with_detector2(&src, &long);
        let f = first_of(&det, MemBugKind::HeapOverflow).expect("finding");
        assert_eq!(m.symbols.resolve(f.pc).expect("sym").name, "strcat_copy");
        let caller = f.caller_pc.expect("caller");
        assert_eq!(m.symbols.resolve(caller).expect("sym").name, "build");
    }

    #[test]
    fn detects_double_free_at_callsite() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    call doit
    halt
doit:
    movi r0, 32
    call malloc
    mov r4, r0
    mov r0, r4
    call free
    mov r0, r4
    call free
    ret
.lib
malloc:
    sys alloc
    ret
free:
    sys free
    ret
.data
buf: .space 8
"
        .to_string();
        let (m, det) = run_with_detector2(&src, b"x");
        let f = first_of(&det, MemBugKind::DoubleFree).expect("finding");
        assert_eq!(m.symbols.resolve(f.pc).expect("sym").name, "free");
        let caller = f.caller_pc.expect("caller");
        assert_eq!(m.symbols.resolve(caller).expect("sym").name, "doit");
        assert_eq!(
            det.iter()
                .filter(|f| f.kind == MemBugKind::DoubleFree)
                .count(),
            1
        );
    }

    #[test]
    fn detects_dangling_write() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    movi r0, 32
    sys alloc
    mov r4, r0
    mov r0, r4
    sys free
    movi r1, 7
    st [r4, 0], r1
    halt
.data
buf: .space 8
"
        .to_string();
        let (_m, det) = run_with_detector2(&src, b"x");
        assert!(first_of(&det, MemBugKind::DanglingWrite).is_some());
        assert!(
            first_of(&det, MemBugKind::HeapOverflow).is_none(),
            "not misclassified"
        );
    }

    #[test]
    fn benign_execution_has_no_findings() {
        let src = format!(
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 16
    sys read
    movi r0, 32
    sys alloc
    mov r4, r0
    mov r0, r4
    movi r1, buf
    call strcpy
    mov r0, r4
    sys free
    call helper
    halt
helper:
    push fp
    mov fp, sp
    movi r1, 5
    st [fp, -4], r1
    mov sp, fp
    pop fp
    ret
.data
buf: .space 24
{LIB_ASM}
"
        );
        let (_m, det) = run_with_detector2(&src, b"short");
        assert!(det.is_empty(), "{det:?}");
    }
}
