//! Dynamic backward slicing (paper §3.2, final analysis step).
//!
//! From a full execution trace, compute the set of dynamic instructions
//! that influenced a criterion instruction — data dependencies through
//! registers, memory bytes, and flags, plus (optionally) control
//! dependencies on the most recent branch. The paper uses the slice as a
//! *sanity check*: any instruction another tool blames must appear in the
//! slice; a finding outside the slice means that tool is wrong. Unlike
//! taint analysis, the slice also captures control and pointer-indirection
//! influences (the paper's `z = x` example).

use std::collections::{BTreeSet, HashMap, VecDeque};

use dbi::effects::Loc;
use dbi::trace::{TraceEvent, TraceRecorder};
use svm::isa::Op;

/// A computed backward slice.
#[derive(Debug, Clone, Default)]
pub struct Slice {
    /// Dynamic trace indices in the slice.
    pub indices: BTreeSet<usize>,
    /// Static pcs covered by the slice.
    pub pcs: BTreeSet<u32>,
    /// Input bytes `(conn, stream offset)` the criterion depends on.
    pub input_deps: BTreeSet<(u32, u32)>,
}

impl Slice {
    /// Whether a static pc appears in the slice — the cross-tool
    /// verification primitive.
    pub fn contains_pc(&self, pc: u32) -> bool {
        self.pcs.contains(&pc)
    }

    /// Number of dynamic instructions in the slice.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }
}

/// What last wrote a location.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Writer {
    /// A dynamic instruction.
    Insn(usize),
    /// An input byte delivered by a `read` syscall.
    Input(u32, u32),
}

/// Compute the backward slice of the trace from `criterion` (a dynamic
/// instruction index). `include_control` adds control dependencies: each
/// instruction depends on the most recent conditional/indirect branch
/// before it.
pub fn backward_slice(trace: &TraceRecorder, criterion: usize, include_control: bool) -> Slice {
    // Forward pass: resolve each entry's data deps against last-writer
    // maps, and record each entry's control dep.
    let n = trace.entries.len();
    let mut last_writer: HashMap<Loc, Writer> = HashMap::new();
    let mut deps: Vec<Vec<Writer>> = Vec::with_capacity(n);
    let mut ctrl_dep: Vec<Option<usize>> = Vec::with_capacity(n);
    let mut last_branch: Option<usize> = None;

    // Input events indexed by the instruction they follow.
    let mut inputs_at: HashMap<usize, Vec<(u32, u32, u32, u32)>> = HashMap::new();
    for ev in &trace.events {
        if let TraceEvent::Input {
            at_idx,
            conn,
            stream_off,
            addr,
            len,
        } = ev
        {
            inputs_at
                .entry(*at_idx)
                .or_default()
                .push((*conn, *stream_off, *addr, *len));
        }
    }

    for (idx, entry) in trace.entries.iter().enumerate() {
        let mut d = Vec::new();
        for r in &entry.effects.reads {
            if let Some(w) = last_writer.get(r) {
                d.push(*w);
            }
        }
        deps.push(d);
        ctrl_dep.push(last_branch);
        for w in &entry.effects.writes {
            last_writer.insert(*w, Writer::Insn(idx));
        }
        // Input delivered by this instruction (a read syscall) marks the
        // buffer bytes as input-written.
        if let Some(ins) = inputs_at.get(&idx) {
            for (conn, off, addr, len) in ins {
                for i in 0..*len {
                    last_writer.insert(
                        Loc::MemByte(addr.wrapping_add(i)),
                        Writer::Input(*conn, off + i),
                    );
                }
            }
        }
        if matches!(
            entry.op,
            Op::JCond { .. } | Op::JmpR { .. } | Op::CallR { .. } | Op::Ret
        ) {
            last_branch = Some(idx);
        }
    }

    // Backward pass: worklist from the criterion.
    let mut slice = Slice::default();
    if criterion >= n {
        return slice;
    }
    let mut work: VecDeque<usize> = VecDeque::new();
    work.push_back(criterion);
    while let Some(idx) = work.pop_front() {
        if !slice.indices.insert(idx) {
            continue;
        }
        slice.pcs.insert(trace.entries[idx].pc);
        for w in &deps[idx] {
            match w {
                Writer::Insn(i) => work.push_back(*i),
                Writer::Input(conn, off) => {
                    slice.input_deps.insert((*conn, *off));
                }
            }
        }
        if include_control {
            if let Some(b) = ctrl_dep[idx] {
                work.push_back(b);
            }
        }
    }
    slice
}

/// Compute a forward slice: every dynamic instruction influenced by the
/// given input byte set. (Paper §3.2 notes the dependence tree supports
/// this; Sweeper itself does not use it, but we expose it for
/// experiments.)
pub fn forward_slice(trace: &TraceRecorder, inputs: &BTreeSet<(u32, u32)>) -> Slice {
    let n = trace.entries.len();
    let mut tainted_locs: HashMap<Loc, ()> = HashMap::new();
    let mut inputs_at: HashMap<usize, Vec<(u32, u32, u32, u32)>> = HashMap::new();
    for ev in &trace.events {
        if let TraceEvent::Input {
            at_idx,
            conn,
            stream_off,
            addr,
            len,
        } = ev
        {
            inputs_at
                .entry(*at_idx)
                .or_default()
                .push((*conn, *stream_off, *addr, *len));
        }
    }
    let mut slice = Slice::default();
    for idx in 0..n {
        let entry = &trace.entries[idx];
        let influenced = entry
            .effects
            .reads
            .iter()
            .any(|r| tainted_locs.contains_key(r));
        if influenced {
            slice.indices.insert(idx);
            slice.pcs.insert(entry.pc);
            for w in &entry.effects.writes {
                tainted_locs.insert(*w, ());
            }
        } else {
            for w in &entry.effects.writes {
                tainted_locs.remove(w);
            }
        }
        if let Some(ins) = inputs_at.get(&idx) {
            for (conn, off, addr, len) in ins {
                for i in 0..*len {
                    if inputs.contains(&(*conn, off + i)) {
                        tainted_locs.insert(Loc::MemByte(addr.wrapping_add(i)), ());
                    }
                }
            }
        }
    }
    slice
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi::instr::Instrumenter;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::{Machine, NopHook, Status};

    fn trace_of(src: &str, input: Option<&[u8]>) -> (Machine, TraceRecorder) {
        let prog = assemble(src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        if let Some(i) = input {
            m.net.push_connection(i.to_vec());
        }
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(TraceRecorder::new()));
        m.run(&mut ins, 400_000_000);
        let tool = ins.detach(id).expect("tool");
        // Move the recorder out of the box via Any.
        let mut holder: Option<TraceRecorder> = None;
        let mut boxed = tool;
        if let Some(tr) = boxed.as_any_mut().downcast_mut::<TraceRecorder>() {
            holder = Some(std::mem::take(tr));
        }
        (m, holder.expect("downcast"))
    }

    #[test]
    fn slice_follows_data_deps_and_skips_irrelevant() {
        // r5 depends on r3 (and buf load); r7 is irrelevant.
        let src = "
.text
main:
    movi r3, 5
    movi r7, 9
    addi r7, r7, 1
    add r5, r3, r3
    halt
";
        let (_m, tr) = trace_of(src, None);
        // Criterion: the `add r5, r3, r3` (index 3).
        let s = backward_slice(&tr, 3, false);
        assert!(s.indices.contains(&3));
        assert!(s.indices.contains(&0), "movi r3 is a dep");
        assert!(!s.indices.contains(&1), "movi r7 is not");
        assert!(!s.indices.contains(&2), "addi r7 is not");
    }

    #[test]
    fn slice_tracks_memory_deps() {
        let src = "
.text
main:
    movi r1, v
    movi r2, 42
    st [r1, 0], r2
    movi r2, 0
    ld r3, [r1, 0]
    halt
.data
v: .word 0
";
        let (_m, tr) = trace_of(src, None);
        let s = backward_slice(&tr, 4, false);
        assert!(s.indices.contains(&2), "the store feeding the load");
        assert!(s.indices.contains(&1), "the stored value's producer");
        assert!(!s.indices.contains(&3), "clobbering r2 later is irrelevant");
    }

    #[test]
    fn control_deps_capture_what_taint_misses() {
        // The paper's example: the branch condition influences the result
        // even though no data flows from it.
        let src = "
.text
main:
    movi r1, 0          ; w
    cmpi r1, 0
    jz take_i
    movi r5, 111
    jmp done
take_i:
    movi r5, 222
done:
    mov r6, r5
    halt
";
        let (_m, tr) = trace_of(src, None);
        let crit = tr.entries.len() - 2; // mov r6, r5
        let without = backward_slice(&tr, crit, false);
        let with = backward_slice(&tr, crit, true);
        // Pure data slice misses the compare/branch; control slice has it.
        let jz_idx = 2;
        assert!(!without.indices.contains(&jz_idx));
        assert!(with.indices.contains(&jz_idx), "branch in control slice");
        assert!(with.indices.contains(&1), "cmp feeding the branch");
        assert!(with.indices.contains(&0), "w's producer");
        assert!(with.len() > without.len());
    }

    #[test]
    fn input_deps_surface_responsible_bytes() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    movi r1, buf
    ldb r3, [r1, 2]
    add r4, r3, r3
    halt
.data
buf: .space 8
";
        let (_m, tr) = trace_of(src, Some(b"abcdef"));
        let crit = tr.entries.len() - 2; // add r4
        let s = backward_slice(&tr, crit, false);
        assert_eq!(
            s.input_deps,
            [(0u32, 2u32)].into_iter().collect(),
            "exactly byte 2"
        );
    }

    #[test]
    fn forward_slice_finds_influenced_instructions() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    movi r1, buf
    ldb r3, [r1, 0]
    add r4, r3, r3
    movi r5, 7
    halt
.data
buf: .space 8
";
        let (_m, tr) = trace_of(src, Some(b"xy"));
        let inputs: BTreeSet<(u32, u32)> = [(0u32, 0u32)].into_iter().collect();
        let s = forward_slice(&tr, &inputs);
        // The ldb and the add are influenced; movi r5 is not.
        let influenced_ops: Vec<&Op> = s.indices.iter().map(|&i| &tr.entries[i].op).collect();
        assert!(influenced_ops.iter().any(|o| matches!(o, Op::LdB { .. })));
        assert!(influenced_ops.iter().any(|o| matches!(o, Op::Alu { .. })));
        assert!(!influenced_ops
            .iter()
            .any(|o| matches!(o, Op::MovI { imm: 7, .. })));
    }

    #[test]
    fn criterion_out_of_range_is_empty() {
        let (_m, tr) = trace_of(".text\nmain:\n halt\n", None);
        assert!(backward_slice(&tr, 99, true).is_empty());
    }

    #[test]
    fn faulting_instruction_is_traced_and_sliceable() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    movi r1, buf
    ld r1, [r1, 0]
    ld r2, [r1, 0]      ; wild read from attacker pointer
    halt
.data
buf: .space 8
";
        let (m, tr) = trace_of(src, Some(&0x5555_0000u32.to_le_bytes()));
        assert!(matches!(m.status(), Status::Faulted(_)));
        // The faulting instruction is the last trace entry.
        let crit = tr.entries.len() - 1;
        let s = backward_slice(&tr, crit, true);
        assert_eq!(
            s.input_deps.len(),
            4,
            "all four pointer bytes: {:?}",
            s.input_deps
        );
        let _ = NopHook; // Silence unused import in some cfgs.
    }
}
