//! Dynamic taint analysis (paper §3.2, third analysis step).
//!
//! The TaintCheck-style tool: bytes arriving from the network are tainted
//! with their `(connection, stream offset)` provenance; taint propagates
//! through data movement and arithmetic (per the resolved dataflow
//! effects of each instruction); using tainted data as a control-transfer
//! target — a return address or function pointer — raises an alert that
//! names the exact input bytes responsible, which is what drives input
//! signature generation and fast recovery.

use std::any::Any;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use dbi::effects::{effects, Loc};
use dbi::tool::{Tool, Watch};
use svm::isa::Op;
use svm::Machine;

/// Provenance of one tainted byte: `(connection id, stream offset)`.
pub type TaintSource = (u32, u32);

/// A set of input provenances (shared to keep propagation cheap).
pub type TaintSet = Arc<BTreeSet<TaintSource>>;

/// An alert: tainted data consumed as a control-transfer target.
#[derive(Debug, Clone)]
pub struct TaintAlert {
    /// The sink instruction (`ret`, `callr`, `jmpr`).
    pub pc: u32,
    /// The (attacker-controlled) target value.
    pub target: u32,
    /// The input bytes that produced it.
    pub sources: BTreeSet<TaintSource>,
}

/// The dynamic taint analysis tool.
#[derive(Default)]
pub struct TaintTool {
    shadow: HashMap<Loc, TaintSet>,
    alerts: Vec<TaintAlert>,
    /// Propagation log: pcs of instructions that moved taint (the raw
    /// material for taint-based VSEFs).
    prop_pcs: BTreeSet<u32>,
}

impl TaintTool {
    /// A fresh tool with an empty shadow map.
    pub fn new() -> TaintTool {
        TaintTool::default()
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[TaintAlert] {
        &self.alerts
    }

    /// Pcs of every instruction that propagated taint.
    pub fn propagation_pcs(&self) -> &BTreeSet<u32> {
        &self.prop_pcs
    }

    /// Taint of a register.
    pub fn taint_of_reg(&self, reg: u8) -> BTreeSet<TaintSource> {
        self.taint_of(&Loc::Reg(reg))
    }

    /// Union taint of a memory range (the pipeline queries the corrupt
    /// chunk header for heap attacks that never reach a control sink).
    pub fn taint_of_mem(&self, addr: u32, len: u32) -> BTreeSet<TaintSource> {
        let mut out = BTreeSet::new();
        for i in 0..len {
            out.extend(
                self.taint_of(&Loc::MemByte(addr.wrapping_add(i)))
                    .iter()
                    .copied(),
            );
        }
        out
    }

    fn taint_of(&self, loc: &Loc) -> BTreeSet<TaintSource> {
        self.shadow
            .get(loc)
            .map(|s| s.as_ref().clone())
            .unwrap_or_default()
    }

    fn union_of(&self, locs: &[Loc]) -> Option<TaintSet> {
        let mut found: Vec<&TaintSet> = Vec::new();
        for l in locs {
            if let Some(s) = self.shadow.get(l) {
                found.push(s);
            }
        }
        match found.len() {
            0 => None,
            1 => Some(found[0].clone()),
            _ => {
                let mut u = BTreeSet::new();
                for s in found {
                    u.extend(s.iter().copied());
                }
                Some(Arc::new(u))
            }
        }
    }
}

impl Tool for TaintTool {
    fn name(&self) -> &str {
        "dynamic-taint"
    }

    fn watches(&self) -> Watch {
        Watch::All
    }

    fn insn_cost(&self) -> u64 {
        // Paper band: TaintCheck-class tools are ~20x-40x.
        40
    }

    fn on_insn(&mut self, m: &Machine, pc: u32, op: &Op) {
        let e = effects(m, op);
        // Sink check first: tainted control-transfer target.
        if let Some((loc, target)) = &e.indirect_target {
            let tainted = match loc {
                Loc::MemByte(a) => self.taint_of_mem(*a, 4),
                other => self.taint_of(other),
            };
            if !tainted.is_empty() {
                self.alerts.push(TaintAlert {
                    pc,
                    target: *target,
                    sources: tainted,
                });
            }
        }
        // Propagate per value flow: each destination receives the union
        // of its own sources; destinations without a flow (or with
        // untainted sources) are cleared — a constant or kernel-produced
        // overwrite removes taint. Address registers and stack-pointer
        // bookkeeping are deliberately not flows (classic TaintCheck
        // policy); slicing covers those dependencies instead.
        let mut covered: Vec<Loc> = Vec::new();
        let mut propagated = false;
        for f in &e.flows {
            covered.push(f.to);
            match self.union_of(&f.from) {
                Some(set) => {
                    propagated = true;
                    self.shadow.insert(f.to, set);
                }
                None => {
                    self.shadow.remove(&f.to);
                }
            }
        }
        if propagated {
            self.prop_pcs.insert(pc);
        }
        for w in &e.writes {
            if !covered.contains(w) {
                self.shadow.remove(w);
            }
        }
    }

    fn on_input(&mut self, _m: &Machine, conn: u32, stream_off: u32, addr: u32, data: &[u8]) {
        for i in 0..data.len() as u32 {
            let src: BTreeSet<TaintSource> = [(conn, stream_off + i)].into_iter().collect();
            self.shadow.insert(Loc::MemByte(addr + i), Arc::new(src));
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbi::instr::Instrumenter;
    use svm::asm::assemble;
    use svm::loader::Aslr;
    use svm::stdlib::LIB_ASM;
    use svm::Status;

    fn run_tainted(src: &str, input: &[u8]) -> (Machine, Instrumenter, dbi::ToolId) {
        let prog = assemble(src).expect("asm");
        let mut m = Machine::boot(&prog, Aslr::off()).expect("boot");
        m.net.push_connection(input.to_vec());
        let mut ins = Instrumenter::new();
        let id = ins.attach(Box::new(TaintTool::new()));
        m.run(&mut ins, 400_000_000);
        (m, ins, id)
    }

    #[test]
    fn input_bytes_are_tainted_and_copies_propagate() {
        let src = format!(
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 16
    sys read
    movi r0, dst
    movi r1, buf
    call strcpy
    halt
.data
buf: .space 16
dst: .space 16
{LIB_ASM}
"
        );
        let (m, ins, id) = run_tainted(&src, b"abc");
        let t = ins.get::<TaintTool>(id).expect("tool");
        let dst = m.symbols.addr_of("dst").expect("dst");
        let taint = t.taint_of_mem(dst, 3);
        assert_eq!(taint, [(0u32, 0u32), (0, 1), (0, 2)].into_iter().collect());
        // The copy loop's pcs are recorded as propagators.
        assert!(!t.propagation_pcs().is_empty());
    }

    #[test]
    fn smashed_return_address_raises_alert_with_sources() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    call victim
    halt
victim:
    push fp
    mov fp, sp
    movi r1, buf
    ld r1, [r1, 0]
    st [fp, 4], r1
    mov sp, fp
    pop fp
    ret
.data
buf: .space 8
"
        .to_string();
        let (m, ins, id) = run_tainted(&src, &0x6666_6666u32.to_le_bytes());
        assert!(matches!(m.status(), Status::Faulted(_)));
        let t = ins.get::<TaintTool>(id).expect("tool");
        let alert = t.alerts().first().expect("alert");
        assert_eq!(alert.target, 0x6666_6666);
        assert_eq!(
            alert.sources,
            [(0u32, 0u32), (0, 1), (0, 2), (0, 3)].into_iter().collect()
        );
        assert_eq!(m.symbols.resolve(alert.pc).expect("sym").name, "victim");
    }

    #[test]
    fn tainted_function_pointer_raises_alert() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    movi r1, buf
    ld r1, [r1, 0]
    callr r1
    halt
.data
buf: .space 8
"
        .to_string();
        let (_m, ins, id) = run_tainted(&src, &0x7777_0000u32.to_le_bytes());
        let t = ins.get::<TaintTool>(id).expect("tool");
        assert_eq!(t.alerts().len(), 1);
        assert_eq!(t.alerts()[0].target, 0x7777_0000);
    }

    #[test]
    fn constants_clear_taint() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 4
    sys read
    movi r1, buf
    ld r3, [r1, 0]     ; r3 tainted
    movi r3, 9         ; overwritten by constant
    st [r1, 0], r3     ; buf overwritten by untainted value
    halt
.data
buf: .space 4
"
        .to_string();
        let (m, ins, id) = run_tainted(&src, b"zzzz");
        let t = ins.get::<TaintTool>(id).expect("tool");
        let buf = m.symbols.addr_of("buf").expect("buf");
        assert!(
            t.taint_of_mem(buf, 4).is_empty(),
            "constant store cleared taint"
        );
        assert!(t.taint_of_reg(3).is_empty());
    }

    #[test]
    fn arithmetic_unions_taint() {
        let src = "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    movi r1, buf
    ldb r3, [r1, 0]
    ldb r4, [r1, 5]
    add r5, r3, r4
    halt
.data
buf: .space 8
"
        .to_string();
        let (_m, ins, id) = run_tainted(&src, b"abcdefgh");
        let t = ins.get::<TaintTool>(id).expect("tool");
        assert_eq!(
            t.taint_of_reg(5),
            [(0u32, 0u32), (0, 5)].into_iter().collect()
        );
    }

    #[test]
    fn benign_control_flow_raises_no_alert() {
        let src = format!(
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 16
    sys read
    movi r0, buf
    call strlen
    halt
.data
buf: .space 16
{LIB_ASM}
"
        );
        let (_m, ins, id) = run_tainted(&src, b"hello");
        let t = ins.get::<TaintTool>(id).expect("tool");
        assert!(t.alerts().is_empty(), "strlen's ret is untainted");
    }
}
