//! Memory-state ("core dump") analysis — the first, fastest analysis step.
//!
//! Paper §3.2: "By looking at the state of the program at the time when
//! the lightweight monitor detects an attack, we can learn some things
//! about the attack. This tool checks the consistency of the heap data
//! structures, walks the stack to check for consistency, and determines
//! the faulting instruction." It takes milliseconds and yields the
//! *initial* VSEF; later dynamic steps refine it.

use svm::{Access, Fault, Machine};

/// Classification of a crash from the static memory image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashClass {
    /// Dereference of a (near-)NULL pointer.
    NullDeref,
    /// Control transferred to a non-code address (smashed return address
    /// or function pointer).
    WildJump,
    /// A data write to an unmapped/forbidden address.
    WildWrite,
    /// A data read from an unmapped/forbidden address.
    WildRead,
    /// The allocator aborted on corrupt chunk metadata.
    HeapMetadataAbort,
    /// Stack guard exceeded.
    StackOverflow,
    /// Arithmetic fault.
    DivByZero,
    /// Decoder fault (often a wild jump into data).
    BadInstruction,
}

/// The initial (memory-state derived) defence recommendation.
///
/// This is what the antibody module turns into the *first* VSEF — the one
/// available tens of milliseconds after detection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InitialRecommendation {
    /// Keep a side stack of return addresses for this function
    /// (stack-smash initial VSEF; paper: "use a side stack for
    /// `try_alias_list`").
    RetAddrGuard {
        /// Function entry address.
        func: u32,
        /// Function name.
        func_name: String,
    },
    /// Check a pointer for NULL before the faulting instruction.
    NullCheck {
        /// The faulting instruction.
        insn: u32,
    },
    /// Verify heap-chunk integrity (incl. double free) at an
    /// allocator callsite.
    HeapIntegrityGuard {
        /// The allocator routine's faulting pc.
        insn: u32,
        /// The application callsite one frame up, if identified.
        caller: Option<u32>,
    },
    /// Nothing better than generic monitoring (e.g. pure DoS faults).
    Generic,
}

/// A probable return address found on (live or dead) stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StackHit {
    /// Stack slot address.
    pub slot: u32,
    /// The return address value.
    pub ret_addr: u32,
    /// Name of the function the return address points into.
    pub into_fn: String,
}

/// The core-dump analyzer's report.
#[derive(Debug, Clone)]
pub struct CoreDumpReport {
    /// The raw fault.
    pub fault: Fault,
    /// Crash classification.
    pub class: CrashClass,
    /// Rendered fault site (`0x... (name)` or `0x... (?)`).
    pub fault_site: String,
    /// Whether the frame-pointer chain walks cleanly.
    pub stack_consistent: bool,
    /// Whether the heap boundary tags and free list are consistent.
    pub heap_consistent: bool,
    /// Probable crash function (from the stack scan), if attributable.
    pub crash_fn: Option<String>,
    /// Return addresses found by scanning around the stack pointer,
    /// innermost (lowest slot) first.
    pub stack_hits: Vec<StackHit>,
    /// The initial VSEF recommendation.
    pub recommendation: InitialRecommendation,
}

/// Walk the frame-pointer chain; returns (frames walked, consistent).
fn walk_fp_chain(m: &Machine) -> (usize, bool) {
    let stack_base = m.layout.stack_top - m.layout.stack_size;
    let mut fp = m.cpu.fp();
    let mut frames = 0usize;
    // The outermost frames don't maintain fp; an fp equal to the initial
    // sp region counts as a clean termination.
    for _ in 0..64 {
        if fp >= m.layout.stack_top - 16 {
            return (frames, true); // Reached the base frame cleanly.
        }
        if fp < stack_base || !fp.is_multiple_of(4) {
            return (frames, false);
        }
        let Ok(saved_fp) = m.mem.read_u32(0, fp) else {
            return (frames, false);
        };
        let Ok(ret) = m.mem.read_u32(0, fp + 4) else {
            return (frames, false);
        };
        if !m.symbols.in_bounds(ret) {
            return (frames, false);
        }
        if saved_fp <= fp {
            return (frames, false);
        }
        fp = saved_fp;
        frames += 1;
    }
    (frames, false)
}

/// Check heap boundary tags plus free-list sanity.
fn heap_consistent(m: &Machine) -> bool {
    let (chunks, tags_ok) = m.heap.walk(&m.mem);
    if !tags_ok {
        return false;
    }
    // Walk the free list (bounded): every listed chunk must exist in the
    // boundary-tag walk and be marked free. A double-free leaves a chunk
    // that is simultaneously listed and in use.
    let mut cur = m.heap.free_head;
    for _ in 0..chunks.len() + 8 {
        if cur == 0 {
            return true;
        }
        match chunks.iter().find(|(addr, _, _)| *addr == cur) {
            Some((_, _, in_use)) => {
                if *in_use {
                    return false; // Listed but allocated: corruption.
                }
            }
            None => return false, // fd points outside the chunk chain.
        }
        match m.mem.read_u32(0, cur + 8) {
            Ok(fd) => cur = fd,
            Err(_) => return false,
        }
    }
    false // Cycle.
}

/// Scan the stack around `sp` for probable return addresses: values
/// pointing into code whose preceding instruction slot decodes as a call.
/// Includes the *dead* stack below `sp`, which is how a post-`ret` crash
/// is attributed to the function whose frame was just popped.
fn scan_stack(m: &Machine) -> Vec<StackHit> {
    let stack_base = m.layout.stack_top - m.layout.stack_size;
    let sp = m.cpu.sp();
    let lo = sp.saturating_sub(512).max(stack_base);
    let hi = (sp.saturating_add(1024)).min(m.layout.stack_top - 4);
    let mut hits = Vec::new();
    let mut slot = lo & !3;
    while slot < hi {
        if let Ok(v) = m.mem.read_u32(0, slot) {
            if m.symbols.in_bounds(v) && v >= svm::isa::INSN_SIZE {
                // Does the instruction before `v` decode as a call?
                if let Ok(w) = m.mem.fetch(v - svm::isa::INSN_SIZE) {
                    if let Ok(op) = svm::isa::Op::decode(w, 0) {
                        if matches!(op, svm::isa::Op::Call { .. } | svm::isa::Op::CallR { .. }) {
                            if let Some(sym) = m.symbols.resolve(v) {
                                hits.push(StackHit {
                                    slot,
                                    ret_addr: v,
                                    into_fn: sym.name.clone(),
                                });
                            }
                        }
                    }
                }
            }
        }
        slot += 4;
    }
    hits
}

/// Analyze a faulted machine's memory image.
///
/// Returns `None` if the machine has not faulted.
pub fn analyze(m: &Machine) -> Option<CoreDumpReport> {
    let fault = match m.status() {
        svm::Status::Faulted(f) => f,
        _ => return None,
    };
    let (_, stack_ok) = walk_fp_chain(m);
    let heap_ok = heap_consistent(m);
    let stack_hits = scan_stack(m);

    let class = match fault {
        Fault::HeapAbort { .. } => CrashClass::HeapMetadataAbort,
        Fault::StackOverflow { .. } => CrashClass::StackOverflow,
        Fault::DivByZero { .. } => CrashClass::DivByZero,
        Fault::BadOpcode { .. } => CrashClass::BadInstruction,
        Fault::Unmapped { addr, access, .. } | Fault::Protection { addr, access, .. } => {
            if fault.is_null_deref() {
                CrashClass::NullDeref
            } else {
                match access {
                    Access::Exec => CrashClass::WildJump,
                    Access::Write => {
                        let _ = addr;
                        CrashClass::WildWrite
                    }
                    Access::Read => CrashClass::WildRead,
                }
            }
        }
    };

    // Attribute the crash to a function. For in-segment pcs that is the
    // containing function; for wild jumps, the innermost (lowest-slot)
    // probable return address names the function whose frame was popped
    // or abused.
    let pc_fn = m.symbols.resolve(fault.pc()).map(|s| s.name.clone());
    let crash_fn = pc_fn
        .clone()
        .or_else(|| stack_hits.first().map(|h| h.into_fn.clone()));

    // For allocator faults, the application callsite is the innermost
    // stack hit outside the allocator wrappers.
    let caller = stack_hits
        .iter()
        .find(|h| h.into_fn != "malloc" && h.into_fn != "free")
        .map(|h| h.ret_addr);

    let recommendation = match class {
        CrashClass::NullDeref => InitialRecommendation::NullCheck { insn: fault.pc() },
        CrashClass::WildJump if !stack_ok || pc_fn.is_none() => {
            match crash_fn.as_ref().and_then(|n| m.symbols.addr_of(n)) {
                Some(func) => InitialRecommendation::RetAddrGuard {
                    func,
                    func_name: crash_fn.clone().unwrap_or_default(),
                },
                None => InitialRecommendation::Generic,
            }
        }
        CrashClass::HeapMetadataAbort => InitialRecommendation::HeapIntegrityGuard {
            insn: fault.pc(),
            caller,
        },
        CrashClass::WildWrite | CrashClass::WildRead => {
            // A wild access inside the allocator is heap corruption; any
            // other wild access gets the generic recommendation pending
            // the dynamic steps.
            if matches!(pc_fn.as_deref(), Some("malloc") | Some("free")) {
                InitialRecommendation::HeapIntegrityGuard {
                    insn: fault.pc(),
                    caller,
                }
            } else {
                InitialRecommendation::Generic
            }
        }
        _ => InitialRecommendation::Generic,
    };

    Some(CoreDumpReport {
        fault,
        class,
        fault_site: m.symbols.render(fault.pc()),
        stack_consistent: stack_ok,
        heap_consistent: heap_ok,
        crash_fn,
        stack_hits,
        recommendation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apps_for_tests::*;

    // The analysis crate cannot depend on `apps` (dependency direction),
    // so the tests build their own minimal vulnerable guests.
    mod apps_for_tests {
        use svm::asm::assemble;
        use svm::loader::Aslr;
        use svm::stdlib::LIB_ASM;
        use svm::{Machine, NopHook, Status};

        pub fn run_to_fault(src: &str, input: &[u8]) -> Machine {
            let prog = assemble(src).expect("asm");
            let mut m = Machine::boot(&prog, Aslr::on(77)).expect("boot");
            m.net.push_connection(input.to_vec());
            match m.run(&mut NopHook, 400_000_000) {
                Status::Faulted(_) => m,
                other => panic!("expected fault, got {other:?}"),
            }
        }

        /// Reads a request and smashes its own return address with the
        /// first 4 request bytes.
        pub fn smasher() -> String {
            format!(
                "
.text
main:
    sys accept
    mov r10, r0
    movi r1, buf
    movi r2, 64
    sys read
    call victim
    halt
victim:
    push fp
    mov fp, sp
    movi r1, buf
    ld r1, [r1, 0]
    st [fp, 4], r1      ; overwrite own return address
    movi r0, buf
    call strlen         ; leaves a ret-into-victim on the dead stack
    mov sp, fp
    pop fp
    ret
.data
buf: .space 64
{LIB_ASM}
"
            )
        }

        pub fn null_derefer() -> String {
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    call looker
    halt
looker:
    movi r0, 0
    ldb r1, [r0, 4]
    ret
.data
buf: .space 8
"
            .to_string()
        }

        pub fn heap_trasher() -> String {
            // Allocates two chunks, trashes the second's header, frees.
            "
.text
main:
    sys accept
    movi r1, buf
    movi r2, 8
    sys read
    call trash
    halt
trash:
    push r4
    push r5
    movi r0, 32
    call malloc
    mov r4, r0
    movi r0, 32
    call malloc
    mov r5, r0
    movi r1, 0x61616161
    st [r5, -4], r1      ; trash own size word
    mov r0, r5
    call free
    pop r5
    pop r4
    ret
.lib
malloc:
    sys alloc
    ret
free:
    sys free
    ret
.data
buf: .space 8
"
            .to_string()
        }
    }

    #[test]
    fn null_deref_classified_and_recommended() {
        let m = apps_for_tests::run_to_fault(&null_derefer(), b"x");
        let r = analyze(&m).expect("report");
        assert_eq!(r.class, CrashClass::NullDeref);
        assert!(r.fault_site.contains("looker"));
        assert!(matches!(
            r.recommendation,
            InitialRecommendation::NullCheck { .. }
        ));
        assert!(r.heap_consistent, "heap untouched");
    }

    #[test]
    fn smashed_ret_gives_wild_jump_and_ret_guard() {
        let m = run_to_fault(&smasher(), &0x6666_6666u32.to_le_bytes());
        let r = analyze(&m).expect("report");
        assert_eq!(r.class, CrashClass::WildJump);
        assert!(
            r.fault_site.ends_with("(?)"),
            "wild pc unresolvable: {}",
            r.fault_site
        );
        // The dead-stack scan attributes the crash to `victim`.
        assert_eq!(r.crash_fn.as_deref(), Some("victim"));
        match &r.recommendation {
            InitialRecommendation::RetAddrGuard { func_name, .. } => {
                assert_eq!(func_name, "victim")
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn heap_abort_classified_with_caller() {
        let m = run_to_fault(&heap_trasher(), b"x");
        let r = analyze(&m).expect("report");
        assert_eq!(r.class, CrashClass::HeapMetadataAbort);
        assert!(!r.heap_consistent, "boundary tags broken");
        assert!(r.fault_site.contains("free"));
        match r.recommendation {
            InitialRecommendation::HeapIntegrityGuard { caller, .. } => {
                let caller = caller.expect("app callsite identified");
                assert_eq!(m.symbols.resolve(caller).expect("sym").name, "trash");
            }
            ref other => panic!("{other:?}"),
        }
    }

    #[test]
    fn healthy_machine_yields_none() {
        let prog = svm::asm::assemble(".text\nmain:\n halt\n").expect("asm");
        let mut m = svm::Machine::boot(&prog, svm::loader::Aslr::off()).expect("boot");
        m.run(&mut svm::NopHook, 1000);
        assert!(analyze(&m).is_none());
    }
}
