//! Shadow call stack shared by the analysis tools.
//!
//! Tracks call/return pairs so findings can be attributed one frame up —
//! the paper reports "overflow at `0x4f0f0907` (lib `strcat`) when called
//! by `0x804ee82` (`ftpBuildTitleUrl`)", which requires knowing the
//! caller of the faulting library routine.

/// One tracked frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Call target (the function entered).
    pub target: u32,
    /// Return address pushed by the call.
    pub ret_addr: u32,
    /// Stack slot holding the return address.
    pub ret_slot: u32,
}

/// A shadow call stack maintained from `on_call`/`on_ret` events.
#[derive(Debug, Clone, Default)]
pub struct ShadowStack {
    frames: Vec<Frame>,
}

impl ShadowStack {
    /// An empty shadow stack.
    pub fn new() -> ShadowStack {
        ShadowStack::default()
    }

    /// Record a call.
    pub fn push(&mut self, target: u32, ret_addr: u32, ret_slot: u32) {
        self.frames.push(Frame {
            target,
            ret_addr,
            ret_slot,
        });
    }

    /// Record a return popping slot `sp`: unwinds every frame at or below
    /// the popped slot (robust to frames skipped by longjmp-like flows).
    pub fn pop_to(&mut self, sp: u32) {
        while let Some(f) = self.frames.last() {
            if f.ret_slot <= sp {
                self.frames.pop();
            } else {
                break;
            }
        }
    }

    /// The innermost frame.
    pub fn top(&self) -> Option<&Frame> {
        self.frames.last()
    }

    /// The return address of the innermost frame — i.e. a pc *in the
    /// caller* of the currently executing function.
    pub fn caller_pc(&self) -> Option<u32> {
        self.top().map(|f| f.ret_addr)
    }

    /// All frames, outermost first.
    pub fn frames(&self) -> &[Frame] {
        &self.frames
    }

    /// Current depth.
    pub fn depth(&self) -> usize {
        self.frames.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_tracks_depth() {
        let mut s = ShadowStack::new();
        s.push(0x100, 0x208, 0xbff0);
        s.push(0x300, 0x108, 0xbfec);
        assert_eq!(s.depth(), 2);
        assert_eq!(s.caller_pc(), Some(0x108));
        s.pop_to(0xbfec);
        assert_eq!(s.depth(), 1);
        assert_eq!(s.top().map(|f| f.target), Some(0x100));
        s.pop_to(0xbff0);
        assert_eq!(s.depth(), 0);
        assert!(s.caller_pc().is_none());
    }

    #[test]
    fn pop_to_unwinds_skipped_frames() {
        let mut s = ShadowStack::new();
        s.push(1, 1, 0xbff8);
        s.push(2, 2, 0xbff4);
        s.push(3, 3, 0xbff0);
        // A return that pops the outermost slot unwinds everything below.
        s.pop_to(0xbff8);
        assert_eq!(s.depth(), 0);
    }
}
