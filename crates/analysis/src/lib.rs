//! # analysis — Sweeper's post-attack exploit analysis tools
//!
//! The four analysis steps of paper §3.2, applied (in the full system) to
//! sandboxed replays from a checkpoint, cheapest first:
//!
//! 1. [`coredump`] — static memory-state analysis of the faulted image:
//!    classifies the crash, checks stack/heap consistency, and yields the
//!    *initial* VSEF recommendation within (virtual) milliseconds.
//! 2. [`membug`] — dynamic memory-bug detection (stack smashing, heap
//!    overflow via the allocator's inline metadata, double free, dangling
//!    writes), with one-frame-up caller attribution via [`callstack`].
//! 3. [`taint`] — TaintCheck-style dynamic taint analysis from network
//!    input bytes to control-transfer sinks; names the exact input bytes
//!    responsible.
//! 4. [`slicing`] — dynamic backward slicing over a full trace, including
//!    control dependencies; used to cross-verify the other tools'
//!    findings ("if they identify an issue which is not in the slice,
//!    then they are incorrect").

pub mod callstack;
pub mod coredump;
pub mod membug;
pub mod slicing;
pub mod taint;

pub use callstack::ShadowStack;
pub use coredump::{analyze, CoreDumpReport, CrashClass, InitialRecommendation};
pub use membug::{MemBugDetector, MemBugFinding, MemBugKind};
pub use slicing::{backward_slice, forward_slice, Slice};
pub use taint::{TaintAlert, TaintSource, TaintTool};
