//! The deterministic virtual-clock reactor: a sharded priority queue of
//! timestamped per-host events with a total order that is independent
//! of the shard count.
//!
//! Each shard owns a contiguous range of hosts and a `BinaryHeap` of
//! that range's future events; popping takes the global minimum across
//! shard heads. Determinism rests on the ordering key being a **pure
//! function of the event's identity**, never of heap internals or
//! insertion order:
//!
//! ```text
//! (at_cycles, tie, host, seq)
//! ```
//!
//! where `seq` is the host's monotone event counter and `tie` is a
//! counter-PRNG draw keyed by `(host, seq)` ([`epidemic::rng::draw`]).
//! Events stamped at the same virtual cycle are therefore interleaved
//! in a seeded pseudo-random order — no host systematically goes first
//! at clock collisions, which are the *common* case with thousands of
//! hosts on one virtual clock — and because `(host, seq)` pairs are
//! unique, the order is strict. Re-partitioning hosts across any
//! number of shards permutes heap internals but never the pop
//! sequence, which is what lets the chaos harness demand bit-equal
//! fleet digests at 1 vs N shards (invariant I10).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use epidemic::rng::draw;

/// Domain tag for same-cycle tie-break draws (`"rtie"`).
pub const DOMAIN_TIE: u64 = 0x7274_6965;

/// A scheduled event handed back by [`Reactor::pop`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fired<T> {
    /// Virtual-clock stamp the event fired at.
    pub at_cycles: u64,
    /// The host the event belongs to.
    pub host: u32,
    /// The scheduled payload.
    pub payload: T,
}

/// Heap entry: ordered by `(at, tie, host, seq)` only — the payload
/// never participates in the order.
#[derive(Debug)]
struct Entry<T> {
    at: u64,
    tie: u64,
    host: u32,
    seq: u64,
    payload: T,
}

impl<T> Entry<T> {
    fn key(&self) -> (u64, u64, u32, u64) {
        (self.at, self.tie, self.host, self.seq)
    }
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// The sharded deterministic event queue.
#[derive(Debug)]
pub struct Reactor<T> {
    seed: u64,
    hosts: u32,
    shards: Vec<BinaryHeap<Reverse<Entry<T>>>>,
    /// Per-host monotone event sequence numbers (the `seq` of the key).
    seqs: Vec<u64>,
    len: usize,
    now: u64,
}

impl<T> Reactor<T> {
    /// A reactor for `hosts` hosts partitioned over `shards` heaps
    /// (clamped to `1..=hosts`), with tie-break draws keyed by `seed`.
    pub fn new(hosts: u32, shards: usize, seed: u64) -> Reactor<T> {
        let hosts = hosts.max(1);
        let shards = shards.clamp(1, hosts as usize);
        Reactor {
            seed,
            hosts,
            shards: (0..shards).map(|_| BinaryHeap::new()).collect(),
            seqs: vec![0; hosts as usize],
            len: 0,
            now: 0,
        }
    }

    /// The contiguous-range shard owning `host`.
    fn shard_of(&self, host: u32) -> usize {
        (host as usize * self.shards.len()) / self.hosts as usize
    }

    /// Schedule `payload` for `host` at virtual cycle `at_cycles`
    /// (clamped forward to the reactor's current time, so the queue
    /// never runs backwards).
    ///
    /// The event's position among same-cycle events is decided *here*,
    /// from `(host, seq)` — not from insertion order — so any schedule
    /// call sequence that assigns the same per-host event numbers
    /// produces the same pop order.
    pub fn schedule(&mut self, at_cycles: u64, host: u32, payload: T) {
        assert!(host < self.hosts, "host {host} out of range");
        let seq = self.seqs[host as usize];
        self.seqs[host as usize] += 1;
        let tie = draw(
            self.seed,
            DOMAIN_TIE,
            (u64::from(host) << 32) | (seq & 0xffff_ffff),
        );
        let entry = Entry {
            at: at_cycles.max(self.now),
            tie,
            host,
            seq,
            payload,
        };
        let shard = self.shard_of(host);
        self.shards[shard].push(Reverse(entry));
        self.len += 1;
    }

    /// Pop the globally earliest event and advance the reactor clock to
    /// its stamp. `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<Fired<T>> {
        let best = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(i, h)| h.peek().map(|Reverse(e)| (e.key(), i)))
            .min()?
            .1;
        let Reverse(entry) = self.shards[best].pop().expect("peeked");
        self.len -= 1;
        self.now = self.now.max(entry.at);
        Some(Fired {
            at_cycles: entry.at,
            host: entry.host,
            payload: entry.payload,
        })
    }

    /// Events currently queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The reactor clock: the stamp of the latest popped event.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Number of shards actually in use.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drain a reactor pre-loaded by `fill`, returning the pop order.
    fn drain(hosts: u32, shards: usize, fill: impl Fn(&mut Reactor<u32>)) -> Vec<(u64, u32, u32)> {
        let mut r = Reactor::new(hosts, shards, 0x5eed);
        fill(&mut r);
        let mut out = Vec::new();
        while let Some(f) = r.pop() {
            out.push((f.at_cycles, f.host, f.payload));
        }
        out
    }

    #[test]
    fn pop_order_is_time_ordered_and_shard_invariant() {
        let fill = |r: &mut Reactor<u32>| {
            // Many same-stamp collisions across hosts, plus distinct
            // stamps, scheduled in a scrambled order.
            for host in 0..16u32 {
                r.schedule(100, host, host);
                r.schedule(50 + u64::from(host % 3), host, 1000 + host);
                r.schedule(100, host, 2000 + host);
            }
        };
        let serial = drain(16, 1, fill);
        assert_eq!(serial.len(), 48);
        let mut stamps: Vec<u64> = serial.iter().map(|&(at, _, _)| at).collect();
        let mut sorted = stamps.clone();
        sorted.sort_unstable();
        assert_eq!(stamps, sorted, "pops are time-ordered");
        stamps.dedup();
        assert!(stamps.len() < serial.len(), "stamp collisions occurred");
        for shards in [2, 3, 4, 7, 16] {
            assert_eq!(serial, drain(16, shards, fill), "shards={shards}");
        }
    }

    #[test]
    fn same_cycle_ties_are_seeded_not_host_ordered() {
        // At a full clock collision the interleave must come from the
        // tie draw: host 0 must not always pop first.
        let mut r = Reactor::new(8, 1, 7);
        for host in 0..8u32 {
            r.schedule(10, host, host);
        }
        let order: Vec<u32> = std::iter::from_fn(|| r.pop().map(|f| f.host)).collect();
        assert_ne!(
            order,
            (0..8).collect::<Vec<_>>(),
            "tie-break is not host index"
        );
        // A different seed draws a different interleave.
        let mut r2 = Reactor::new(8, 1, 8);
        for host in 0..8u32 {
            r2.schedule(10, host, host);
        }
        let order2: Vec<u32> = std::iter::from_fn(|| r2.pop().map(|f| f.host)).collect();
        assert_ne!(order, order2, "tie order is seeded");
    }

    #[test]
    fn clock_is_monotone_and_late_schedules_clamp_forward() {
        let mut r = Reactor::new(2, 2, 1);
        r.schedule(100, 0, 0);
        assert_eq!(r.pop().expect("pop").at_cycles, 100);
        assert_eq!(r.now(), 100);
        // Scheduling "in the past" fires at the current clock instead.
        r.schedule(10, 1, 1);
        let f = r.pop().expect("pop");
        assert_eq!((f.at_cycles, f.host), (100, 1));
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
    }
}
