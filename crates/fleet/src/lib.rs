//! # fleet — the deterministic virtual-clock front-end (paper §5 scale-out)
//!
//! The per-host experiments elsewhere in this repository drive one
//! [`sweeper::Sweeper`] at a time. Sweeper's claims, though, are
//! *community* claims: thousands of lightly-instrumented hosts, a few
//! producers doing heavy analysis, antibodies racing a fast worm. This
//! crate is the front-end that serves that community from one process:
//!
//! - [`reactor`] — a sharded discrete-event scheduler over a virtual
//!   clock whose event order is a pure function of event identity
//!   (counter-PRNG tie-breaking), so a run is **bit-identical** for
//!   any shard count and across repeats of the same seed.
//! - [`loadgen`] — open-loop Poisson client arrivals per host, keyed
//!   by `(host, arrival-index)`.
//! - [`sim`] — the fleet itself: 1k–10k guest Sweeper instances, each
//!   a full protected server, serving benign load while the epidemic
//!   contact model ([`epidemic::contact`]) injects a mid-run outbreak;
//!   one host's rollback/replay/analysis pause overlaps every other
//!   host's service, and checkpoint pre-copy drains are batched into
//!   the gaps between events.
//!
//! The headline measurement ([`sim::run`] → [`FleetOutcome`]): fleet-
//! wide p50/p99/p999 benign service latency on the virtual clock,
//! outbreak window versus quiescent baseline, plus a determinism
//! digest the chaos harness checks for shard invariance (I10) and the
//! `tables fleet` benchmark serializes as the schema-v7 `"fleet"`
//! block.

pub mod loadgen;
pub mod reactor;
pub mod sim;

pub use loadgen::LoadGen;
pub use reactor::{Fired, Reactor};
pub use sim::{run, FleetConfig, FleetOutcome, COMMUNITY_KEY};
