//! Open-loop Poisson load generation for the fleet reactor.
//!
//! Each host receives an independent Poisson stream of benign client
//! requests: inter-arrival gaps are exponentially distributed with the
//! configured mean rate, drawn from the counter PRNG keyed by
//! `(host, arrival-index)` so the whole arrival schedule is a pure
//! function of the fleet seed — independent of processing order and of
//! the reactor shard count. Open-loop matters for tail latency: clients
//! do not wait for responses, so a host stalled in attack analysis
//! keeps accumulating queue depth and the stall surfaces in p99/p999
//! instead of silently throttling offered load.

use epidemic::rng::draw_unit;

/// Domain tag for arrival inter-arrival gaps (`"lgwt"`).
pub const DOMAIN_LOADGEN_WAIT: u64 = 0x6c67_7774;

/// The deterministic open-loop arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadGen {
    /// Fleet RNG seed (domain-separated from other consumers).
    pub seed: u64,
    /// Mean per-host arrival rate, requests per virtual second.
    pub rate_per_sec: f64,
}

impl LoadGen {
    /// The exponentially distributed gap (virtual seconds) between
    /// arrival `k-1` and arrival `k` on `host` (`k = 0` is the gap from
    /// time zero to the first arrival).
    pub fn gap_secs(&self, host: u32, k: u64) -> f64 {
        let counter = (u64::from(host) << 32) | (k & 0xffff_ffff);
        let u = draw_unit(self.seed, DOMAIN_LOADGEN_WAIT, counter);
        -(1.0f64 - u).ln() / self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaps_are_pure_and_distinct_per_host_and_index() {
        let g = LoadGen {
            seed: 9,
            rate_per_sec: 2.0,
        };
        assert_eq!(g.gap_secs(3, 5), g.gap_secs(3, 5));
        assert_ne!(g.gap_secs(3, 5), g.gap_secs(3, 6));
        assert_ne!(g.gap_secs(3, 5), g.gap_secs(4, 5));
    }

    #[test]
    fn gaps_have_the_configured_mean() {
        let g = LoadGen {
            seed: 1,
            rate_per_sec: 4.0,
        };
        let n = 8000u64;
        let total: f64 = (0..n).map(|k| g.gap_secs(0, k)).sum();
        let mean = total / n as f64;
        assert!((mean - 0.25).abs() < 0.025, "mean {mean}");
    }
}
