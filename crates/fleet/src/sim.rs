//! The fleet simulation: thousands of guest [`Sweeper`] instances
//! multiplexed on one deterministic virtual-clock reactor.
//!
//! Each host is a full Sweeper-protected server. The reactor drives
//! five event kinds:
//!
//! - **Benign arrival** — open-loop Poisson client requests
//!   ([`crate::loadgen`]); each arrival chains the next one.
//! - **Worm arrival** — an exploit request delivered by the epidemic
//!   contact process ([`epidemic::contact`]). Seeded mid-run by
//!   patient-zero external scans at `outbreak_at_ms`.
//! - **Complete** — a host finished a service step and becomes idle;
//!   the between-event checkpoint pre-copy drain runs here, off the
//!   reactor clock, and the next queued request starts.
//! - **Drain** — the periodic idle-time pre-copy drain, so quiescent
//!   hosts keep their dirty-page debt low and the next snapshot stays
//!   instant.
//! - **Deliver** — a certified antibody bundle arriving from the first
//!   producer to complete analysis; the host replay-verifies before
//!   deploying ([`Sweeper::receive_certified`]).
//!
//! Service on each host is *sequential* (one request at a time; later
//! arrivals queue), but hosts overlap freely: while one host is paused
//! in rollback/replay/analysis — a single [`Sweeper::poll_offer`] call
//! whose `busy_cycles` covers the whole pause — every other host keeps
//! serving, and its queue depth converts the pause into tail latency.
//! That is exactly the fleet-wide p99/p999 shift the outbreak window
//! measures against the quiescent baseline.
//!
//! ## What the contact process models
//!
//! Under Sweeper every exploit delivery *fails* (ASLR makes the first
//! scan crash, detection fires, the host recovers); the worm never
//! acquires a host from which to scan. The branching contact process
//! here therefore models the *external* worm population's scan
//! pressure: each delivered-and-detected exploit spawns a bounded burst
//! of future contacts, approximating the outside epidemic's growth.
//! Once antibodies distribute, deliveries die at the proxy filter and
//! spawn nothing — the quench is visible as `filtered` overtaking
//! `attacks`.
//!
//! ## Determinism
//!
//! Every random quantity — arrival gaps, contact delays and victims,
//! wire delays, same-cycle tie-breaks — is a counter-PRNG draw keyed by
//! stable identities (host ids, arrival indices, infection numbers),
//! never by processing order or wall-clock anything. Infections are
//! numbered in reactor pop order, which the reactor guarantees is
//! shard-count-invariant, so the same seed produces a bit-identical
//! [`FleetOutcome::digest`] for any shard count (chaos invariant I10)
//! and across repeated runs.

use std::collections::VecDeque;

use antibody::CertifiedBundle;
use apps::workload::{Target, Workload};
use apps::{cvs, httpd1, httpd2, squid, App};
use epidemic::rng::{draw, draw_unit};
use epidemic::ContactModel;
use obs::MetricsRegistry;
use svm::clock::{cycles_to_secs, secs_to_cycles};
use sweeper::{Config, LatencyBook, RecoveryMode, RequestOutcome, Sweeper};

use crate::loadgen::LoadGen;
use crate::reactor::Reactor;

/// Domain tag for deriving the fleet's sub-seeds (`"flt "`).
pub const DOMAIN_FLEET: u64 = 0x666c_7420;
/// Domain tag for antibody wire-propagation delays (`"wire"`).
pub const DOMAIN_WIRE: u64 = 0x7769_7265;

/// The shared community certification key every fleet host trusts.
pub const COMMUNITY_KEY: u64 = 0x5eed_f1ee_7c0d_e042;

/// Configuration of one fleet run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Number of guest Sweeper hosts.
    pub hosts: u32,
    /// Reactor shard count (affects data-structure layout only, never
    /// results — see [`crate::reactor`]).
    pub shards: usize,
    /// Master seed; every random stream derives from it.
    pub seed: u64,
    /// Which protected application the fleet runs.
    pub target: Target,
    /// Mean per-host benign arrival rate (requests per virtual second).
    pub arrival_rate_hz: f64,
    /// Virtual-time horizon: no new work is scheduled past this point
    /// (in-flight service still completes).
    pub horizon_ms: f64,
    /// When patient-zero scans hit, `None` for a quiescent-only run.
    pub outbreak_at_ms: Option<f64>,
    /// Every `producer_every`-th host is a producer (full analysis);
    /// the rest are consumers.
    pub producer_every: u32,
    /// Mean scan rate of the modelled external worm (contacts/sec).
    pub worm_rate_hz: f64,
    /// Contacts spawned per delivered infection.
    pub fanout: u32,
    /// Uniform `(min, max)` antibody wire delay in virtual ms.
    pub wire_delay_ms: (f64, f64),
    /// Per-host checkpoint interval (and idle drain period), ms.
    pub interval_ms: u64,
    /// Hard cap on total worm contacts scheduled (keeps the branching
    /// process bounded above the horizon cutoff).
    pub contact_cap: u32,
    /// Post-attack recovery strategy every host runs. Domain (the
    /// default) is what keeps an attacked host's pause off its benign
    /// queue: the partial rollback restores service immediately and the
    /// analysis overlaps the queued requests
    /// ([`sweeper::PollOutcome::deferred_cycles`]).
    pub recovery: RecoveryMode,
}

impl FleetConfig {
    /// The benchmark configuration: `hosts` guests at `seed`, 1.5 Hz
    /// open-loop load, 1.5 s horizon with patient zero at 700 ms.
    pub fn new(hosts: u32, seed: u64) -> FleetConfig {
        FleetConfig {
            hosts,
            shards: 1,
            seed,
            target: Target::Apache1,
            arrival_rate_hz: 1.5,
            horizon_ms: 1500.0,
            outbreak_at_ms: Some(700.0),
            producer_every: 50,
            worm_rate_hz: 40.0,
            fanout: 3,
            wire_delay_ms: (5.0, 25.0),
            interval_ms: 200,
            contact_cap: 4 * hosts,
            recovery: RecoveryMode::Domain,
        }
    }

    /// A small, fast configuration for tests and the chaos harness.
    pub fn smoke(hosts: u32, seed: u64) -> FleetConfig {
        FleetConfig {
            horizon_ms: 600.0,
            outbreak_at_ms: Some(250.0),
            producer_every: 4,
            contact_cap: 2 * hosts,
            ..FleetConfig::new(hosts, seed)
        }
    }

    /// Same run with a different shard count (results must not change).
    pub fn with_shards(self, shards: usize) -> FleetConfig {
        FleetConfig { shards, ..self }
    }

    /// Same run with a different per-host recovery strategy.
    pub fn with_recovery(self, recovery: RecoveryMode) -> FleetConfig {
        FleetConfig { recovery, ..self }
    }
}

/// Aggregate result of one fleet run.
///
/// Deliberately free of wall-clock time and of the shard count: every
/// field is a pure function of `(config minus shards)`, which is what
/// makes the digest comparable across runs and shard counts.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Hosts simulated.
    pub hosts: u32,
    /// Master seed of the run.
    pub seed: u64,
    /// Requests served normally.
    pub served: u64,
    /// Requests dropped by deployed signatures.
    pub filtered: u64,
    /// Attacks detected (exploit deliveries that reached execution).
    pub attacks: u64,
    /// Worm contacts scheduled by the epidemic process.
    pub contacts: u64,
    /// Certified bundles verified and deployed fleet-wide.
    pub bundles_deployed: u64,
    /// Certified bundles rejected at verification.
    pub bundles_rejected: u64,
    /// Hosts holding at least one deployed antibody at the end.
    pub protected_hosts: u32,
    /// Benign service latency for requests arriving before the
    /// outbreak (or all requests when no outbreak was configured).
    pub quiescent: LatencyBook,
    /// Benign service latency for requests arriving at or after the
    /// outbreak instant.
    pub outbreak: LatencyBook,
    /// FNV-1a digest of every service completion (host, arrival,
    /// completion) in reactor order plus final per-host state in host
    /// order. Bit-identical across shard counts and repeated runs.
    pub digest: u64,
    /// All hosts' metrics merged in host-index order
    /// ([`MetricsRegistry::merge_all`]): counters sum, gauges keep the
    /// highest-indexed host's value.
    pub metrics: MetricsRegistry,
}

/// One queued-but-unserved request on a host.
struct PendingReq {
    bytes: Vec<u8>,
    arrival: u64,
    worm: bool,
}

/// One guest host: the protected Sweeper, its client workload, and its
/// service queue.
struct Host {
    sw: Sweeper,
    wl: Workload,
    queue: VecDeque<PendingReq>,
    busy: bool,
}

/// Reactor event payloads.
#[derive(Debug)]
enum Ev {
    /// Benign arrival number `k` on its host (chains arrival `k + 1`).
    Benign { k: u64 },
    /// A worm exploit delivery.
    Worm,
    /// The host's in-flight service step finishes.
    Complete,
    /// Periodic idle-time checkpoint pre-copy drain.
    Drain,
    /// A certified antibody bundle arrives.
    Deliver(Box<CertifiedBundle>),
}

/// FNV-1a (64-bit) fold of one u64, the same construction the chaos
/// harness uses (fleet cannot depend on `chaos` — chaos depends on
/// fleet — so the five-line primitive is restated here).
fn fnv_fold(h: u64, v: u64) -> u64 {
    let mut h = h;
    for b in v.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

struct Sim {
    cfg: FleetConfig,
    hosts: Vec<Host>,
    reactor: Reactor<Ev>,
    lg: LoadGen,
    contact: ContactModel,
    wire_seed: u64,
    worm_input: Vec<u8>,
    horizon: u64,
    outbreak_at: Option<u64>,
    interval_cycles: u64,
    next_infection: u64,
    bundle_sent: bool,
    served: u64,
    filtered: u64,
    attacks: u64,
    contacts: u64,
    bundles_deployed: u64,
    bundles_rejected: u64,
    quiescent: LatencyBook,
    outbreak: LatencyBook,
    digest: u64,
}

impl Sim {
    fn boot(cfg: &FleetConfig) -> Result<Sim, String> {
        let app = boot_app(cfg.target)?;
        let worm_input = exploit_input(cfg.target, &app);
        let mut hosts = Vec::with_capacity(cfg.hosts as usize);
        for h in 0..cfg.hosts {
            let hseed = draw(cfg.seed, DOMAIN_FLEET, 0x100 + u64::from(h));
            let producer = cfg.producer_every > 0 && h % cfg.producer_every == 0;
            let conf = if producer {
                Config::producer(hseed)
            } else {
                Config::consumer(hseed)
            }
            .with_interval_ms(cfg.interval_ms as f64)
            .with_recovery(cfg.recovery);
            let sw = Sweeper::protect(&app, conf)
                .map_err(|e| format!("fleet host {h} failed to boot: {e}"))?;
            hosts.push(Host {
                sw,
                wl: Workload::new(cfg.target, hseed ^ 0x776c),
                queue: VecDeque::new(),
                busy: false,
            });
        }
        Ok(Sim {
            hosts,
            reactor: Reactor::new(cfg.hosts, cfg.shards, draw(cfg.seed, DOMAIN_FLEET, 4)),
            lg: LoadGen {
                seed: draw(cfg.seed, DOMAIN_FLEET, 1),
                rate_per_sec: cfg.arrival_rate_hz,
            },
            contact: ContactModel {
                seed: draw(cfg.seed, DOMAIN_FLEET, 2),
                hosts: u64::from(cfg.hosts),
                rate_per_sec: cfg.worm_rate_hz,
                fanout: cfg.fanout,
            },
            wire_seed: draw(cfg.seed, DOMAIN_FLEET, 3),
            worm_input,
            horizon: secs_to_cycles(cfg.horizon_ms / 1e3),
            outbreak_at: cfg.outbreak_at_ms.map(|ms| secs_to_cycles(ms / 1e3)),
            interval_cycles: secs_to_cycles(cfg.interval_ms as f64 / 1e3),
            next_infection: 0,
            bundle_sent: false,
            served: 0,
            filtered: 0,
            attacks: 0,
            contacts: 0,
            bundles_deployed: 0,
            bundles_rejected: 0,
            quiescent: LatencyBook::new(),
            outbreak: LatencyBook::new(),
            digest: FNV_OFFSET,
            cfg: *cfg,
        })
    }

    /// Seed the initial event population: each host's first benign
    /// arrival, each host's periodic drain, and patient zero's scans.
    fn prime(&mut self) {
        for h in 0..self.cfg.hosts {
            let at = secs_to_cycles(self.lg.gap_secs(h, 0));
            if at <= self.horizon {
                self.reactor.schedule(at, h, Ev::Benign { k: 0 });
            }
            if self.interval_cycles <= self.horizon {
                self.reactor.schedule(self.interval_cycles, h, Ev::Drain);
            }
        }
        if self.outbreak_at.is_some() {
            let infection = self.next_infection;
            self.next_infection += 1;
            self.spawn_contacts(infection, self.outbreak_at.unwrap_or(0));
        }
    }

    /// Schedule the contact burst of infection event `infection`,
    /// starting from virtual time `from`.
    fn spawn_contacts(&mut self, infection: u64, from: u64) {
        for (delay_secs, victim) in self.contact.burst(infection) {
            if self.contacts >= u64::from(self.cfg.contact_cap) {
                return;
            }
            let at = from + secs_to_cycles(delay_secs);
            if at > self.horizon {
                continue;
            }
            self.contacts += 1;
            self.reactor.schedule(at, victim as u32, Ev::Worm);
        }
    }

    /// Start serving the host's next queued request, if it is idle and
    /// one is waiting.
    fn maybe_begin_service(&mut self, h: u32, t: u64) {
        let host = &mut self.hosts[h as usize];
        if host.busy {
            return;
        }
        let Some(req) = host.queue.pop_front() else {
            return;
        };
        host.busy = true;
        let poll = host.sw.poll_offer(req.bytes);
        let done = t + poll.busy_cycles;
        self.digest = fnv_fold(
            fnv_fold(fnv_fold(self.digest, u64::from(h)), req.arrival),
            done,
        );
        match poll.outcome {
            RequestOutcome::Served { .. } => self.served += 1,
            RequestOutcome::Filtered { .. } => self.filtered += 1,
            RequestOutcome::Attack(report) => {
                self.attacks += 1;
                if req.worm {
                    let infection = self.next_infection;
                    self.next_infection += 1;
                    self.spawn_contacts(infection, done);
                }
                if !self.bundle_sent {
                    if let Some(analysis) = report.analysis.as_ref() {
                        let bundle = self.hosts[h as usize].sw.certify_antibody(
                            h,
                            0,
                            COMMUNITY_KEY,
                            &analysis.antibody,
                        );
                        if let Some(bundle) = bundle {
                            self.bundle_sent = true;
                            self.broadcast(h, done, &bundle);
                        }
                    }
                }
            }
        }
        if !req.worm {
            let ms = cycles_to_secs(done - req.arrival) * 1e3;
            let book = match self.outbreak_at {
                Some(outbreak) if req.arrival >= outbreak => &mut self.outbreak,
                _ => &mut self.quiescent,
            };
            book.add(done, ms);
        }
        self.reactor.schedule(done, h, Ev::Complete);
    }

    /// Fan the first certified bundle out to every other host with a
    /// per-destination wire delay.
    fn broadcast(&mut self, from: u32, at: u64, bundle: &CertifiedBundle) {
        let (lo, hi) = self.cfg.wire_delay_ms;
        for dest in 0..self.cfg.hosts {
            if dest == from {
                continue;
            }
            let counter = (u64::from(from) << 32) | u64::from(dest);
            let u = draw_unit(self.wire_seed, DOMAIN_WIRE, counter);
            let delay = secs_to_cycles((lo + u * (hi - lo)) / 1e3);
            self.reactor
                .schedule(at + delay, dest, Ev::Deliver(Box::new(bundle.clone())));
        }
    }

    fn run(mut self) -> FleetOutcome {
        self.prime();
        while let Some(fired) = self.reactor.pop() {
            let (t, h) = (fired.at_cycles, fired.host);
            match fired.payload {
                Ev::Benign { k } => {
                    let bytes = self.hosts[h as usize].wl.next_request();
                    self.hosts[h as usize].queue.push_back(PendingReq {
                        bytes,
                        arrival: t,
                        worm: false,
                    });
                    let next = t + secs_to_cycles(self.lg.gap_secs(h, k + 1));
                    if next <= self.horizon {
                        self.reactor.schedule(next, h, Ev::Benign { k: k + 1 });
                    }
                    self.maybe_begin_service(h, t);
                }
                Ev::Worm => {
                    self.hosts[h as usize].queue.push_back(PendingReq {
                        bytes: self.worm_input.clone(),
                        arrival: t,
                        worm: true,
                    });
                    self.maybe_begin_service(h, t);
                }
                Ev::Complete => {
                    self.hosts[h as usize].busy = false;
                    // Between-event background work: fold the pages the
                    // finished request dirtied into the pending delta
                    // while the host is idle (never charged to service).
                    self.hosts[h as usize].sw.drain_precopy();
                    self.maybe_begin_service(h, t);
                }
                Ev::Drain => {
                    if !self.hosts[h as usize].busy {
                        self.hosts[h as usize].sw.drain_precopy();
                    }
                    let next = t + self.interval_cycles;
                    if next <= self.horizon {
                        self.reactor.schedule(next, h, Ev::Drain);
                    }
                }
                Ev::Deliver(bundle) => {
                    match self.hosts[h as usize]
                        .sw
                        .receive_certified(&bundle, COMMUNITY_KEY)
                    {
                        sweeper::BundleOutcome::Deployed { .. } => self.bundles_deployed += 1,
                        sweeper::BundleOutcome::Rejected(_) => self.bundles_rejected += 1,
                        sweeper::BundleOutcome::SenderQuarantined => {}
                    }
                }
            }
        }
        self.finish()
    }

    fn finish(mut self) -> FleetOutcome {
        let mut protected = 0u32;
        for host in &self.hosts {
            let s = host.sw.status();
            if s.deployed_signatures > 0 || s.deployed_vsefs > 0 {
                protected += 1;
            }
            for v in [
                s.requests_served,
                s.requests_sampled,
                s.attacks_detected,
                s.requests_filtered,
                s.deployed_vsefs as u64,
                s.deployed_signatures as u64,
                s.checkpoints_retained as u64,
                s.checkpoints_taken,
                host.sw.machine.clock.cycles(),
            ] {
                self.digest = fnv_fold(self.digest, v);
            }
        }
        let exported: Vec<MetricsRegistry> =
            self.hosts.iter().map(|h| h.sw.export_metrics()).collect();
        let metrics = MetricsRegistry::merge_all(&exported);
        FleetOutcome {
            hosts: self.cfg.hosts,
            seed: self.cfg.seed,
            served: self.served,
            filtered: self.filtered,
            attacks: self.attacks,
            contacts: self.contacts,
            bundles_deployed: self.bundles_deployed,
            bundles_rejected: self.bundles_rejected,
            protected_hosts: protected,
            quiescent: self.quiescent,
            outbreak: self.outbreak,
            digest: self.digest,
            metrics,
        }
    }
}

fn boot_app(target: Target) -> Result<App, String> {
    match target {
        Target::Apache1 => httpd1::app(),
        Target::Apache2 => httpd2::app(),
        Target::Cvs => cvs::app(),
        Target::Squid => squid::app(),
    }
    .map_err(|e| format!("fleet app boot ({target:?}): {e}"))
}

fn exploit_input(target: Target, app: &App) -> Vec<u8> {
    match target {
        Target::Apache1 => httpd1::exploit_crash(app).input,
        Target::Apache2 => httpd2::exploit_crash(app).input,
        Target::Cvs => cvs::exploit_crash(app).input,
        Target::Squid => squid::exploit_crash(app).input,
    }
}

/// Run one fleet simulation to completion.
pub fn run(cfg: &FleetConfig) -> Result<FleetOutcome, String> {
    Ok(Sim::boot(cfg)?.run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiescent_fleet_serves_everything() {
        let cfg = FleetConfig {
            outbreak_at_ms: None,
            ..FleetConfig::smoke(4, 11)
        };
        let out = run(&cfg).expect("fleet runs");
        assert!(out.served > 0, "{out:?}");
        assert_eq!(out.attacks, 0);
        assert_eq!(out.contacts, 0);
        assert!(out.outbreak.is_empty());
        assert_eq!(out.quiescent.len() as u64, out.served);
        assert!(out.quiescent.percentile(0.5).expect("p50") > 0.0);
    }

    #[test]
    fn outbreak_detects_spreads_and_quenches() {
        let out = run(&FleetConfig::smoke(6, 3)).expect("fleet runs");
        assert!(out.attacks > 0, "patient zero lands: {out:?}");
        assert!(out.contacts > 0, "detections spawn scan pressure");
        assert_eq!(out.bundles_rejected, 0);
        assert!(out.bundles_deployed > 0, "first producer broadcasts");
        assert!(
            out.protected_hosts > 1,
            "antibody reached beyond the producer: {out:?}"
        );
    }

    #[test]
    fn domain_recovery_keeps_the_analysis_pause_off_the_queue() {
        // Same seed, same outbreak, only the recovery strategy differs.
        // Under Full recovery an attacked producer stalls its whole
        // queue behind detect→rollback→replay→analysis; under Domain
        // recovery the partial rollback restores the benign connections
        // first and the analysis overlaps the queue, so the outbreak
        // tail collapses.
        let cfg = FleetConfig {
            // Dense enough load that benign requests queue behind an
            // attacked host's pause, and every host a producer so the
            // attacked host itself pays the analysis.
            arrival_rate_hz: 25.0,
            producer_every: 1,
            ..FleetConfig::smoke(8, 5)
        };
        let dom = run(&cfg).expect("domain run");
        let full = run(&cfg.with_recovery(RecoveryMode::Full)).expect("full run");
        assert!(dom.attacks > 0 && full.attacks > 0, "outbreak landed");
        assert!(
            dom.metrics.counter("recovery.domain_rollbacks") > 0,
            "partial rollbacks ran"
        );
        assert_eq!(full.metrics.counter("recovery.domain_rollbacks"), 0);
        assert_eq!(dom.metrics.counter("recovery.i12_violations"), 0, "I12");
        let d999 = dom.outbreak.percentile(0.999).expect("domain outbreak");
        let f999 = full.outbreak.percentile(0.999).expect("full outbreak");
        assert!(
            d999 < f999,
            "domain tail must beat full: {d999:.3} vs {f999:.3} ms"
        );
    }

    #[test]
    fn same_seed_same_digest_any_shard_count() {
        let base = FleetConfig::smoke(5, 7);
        let one = run(&base).expect("run");
        let again = run(&base).expect("run");
        assert_eq!(one.digest, again.digest, "repeat runs are bit-identical");
        for shards in [2, 3, 5] {
            let sharded = run(&base.with_shards(shards)).expect("run");
            assert_eq!(one.digest, sharded.digest, "shards={shards}");
            assert_eq!(one.served, sharded.served);
            assert_eq!(one.attacks, sharded.attacks);
        }
        let other = run(&FleetConfig::smoke(5, 8)).expect("run");
        assert_ne!(one.digest, other.digest, "seed changes the run");
    }
}
