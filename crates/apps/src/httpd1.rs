//! mini-httpd v1 — the Apache 1.3.27 / CVE-2003-0542 analogue.
//!
//! A tiny HTTP server whose alias-matching routine `try_alias_list`
//! copies the request URI into a fixed 64-byte stack buffer with no
//! bounds check (the paper's `lmatcher` overflow). A long URI overwrites
//! the saved frame pointer and return address; the compromise exploit
//! redirects the `ret` into shellcode carried in the request buffer
//! (pre-NX data segment), while under address-space randomization the
//! hard-coded address misses and the `ret` faults — Sweeper's detection
//! signal ("crash at `try_alias_list`; stack inconsistent").

use svm::loader::Layout;
use svm::stdlib::LIB_ASM;
use svm::SvmError;

use crate::common::{shellcode, App, BugType, Exploit, RT_ASM};

/// Size of the vulnerable stack buffer.
pub const STACK_BUF: usize = 64;

fn source() -> String {
    format!(
        r#"
; mini-httpd v1 (Apache1 analogue) — stack smashing in try_alias_list.
.text
main:
    sys accept
    mov r10, r0            ; connection id (kept live; shellcode uses it)
    mov r0, r10
    movi r1, reqbuf
    movi r2, 1024
    sys read
    cmpi r0, 0
    jz conn_done
    movi r1, reqbuf
    add r1, r1, r0
    movi r2, 0
    stb [r1, 0], r2        ; NUL-terminate the request
    call handle_request
conn_done:
    mov r0, r10
    sys close
    jmp main

handle_request:
    push fp
    mov fp, sp
    movi r0, reqbuf
    movi r1, method_get
    movi r2, 4
    call strncmp
    cmpi r0, 0
    jnz hr_bad
    movi r0, reqbuf+4      ; URI starts after "GET "
    movi r1, rw_prefix
    movi r2, 4
    call strncmp
    cmpi r0, 0
    jz hr_rewrite
    movi r0, reqbuf+4
    call try_alias_list
    jmp hr_respond
hr_rewrite:
    movi r0, reqbuf+4
    call try_rewrite
hr_respond:
    mov r0, r10
    movi r1, resp_ok
    call write_cstr
    jmp hr_out
hr_bad:
    mov r0, r10
    movi r1, resp_bad
    call write_cstr
hr_out:
    mov sp, fp
    pop fp
    ret

; The vulnerable routine: copies the URI into a 64-byte stack buffer
; until a space/NUL, with NO bounds check.
try_alias_list:
    push fp
    mov fp, sp
    subi sp, sp, {STACK_BUF}
    mov r1, r0             ; src = URI
    mov r2, sp             ; dst = local buffer
tal_copy:
    ldb r3, [r1, 0]
    cmpi r3, ' '
    jz tal_term
    cmpi r3, 0
    jz tal_term
    stb [r2, 0], r3        ; <-- the overflowing store (the "lmatcher")
    addi r1, r1, 1
    addi r2, r2, 1
    jmp tal_copy
tal_term:
    movi r3, 0
    stb [r2, 0], r3
    mov r0, sp
    movi r1, alias_icons
    movi r2, 7
    call strncmp
    mov sp, fp
    pop fp
    ret                    ; <-- consumes the (possibly smashed) address

; The paper's hypothetical second exploitation route (SS5.2): the same
; unbounded copy, but the frame also holds a *function pointer* above the
; buffer. Overflowing 64 bytes redirects the matcher call WITHOUT ever
; touching the return address — a variant the initial ret-addr VSEF
; cannot see; taint analysis (tainted callr target) catches it.
try_rewrite:
    push fp
    mov fp, sp
    subi sp, sp, 72
    movi r3, default_matcher
    st [fp, -8], r3        ; matcher fn pointer, a stack local
    mov r1, r0
    mov r2, sp             ; 64-byte rule buffer at fp-72..fp-8
trw_copy:
    ldb r3, [r1, 0]
    cmpi r3, ' '
    jz trw_term
    cmpi r3, 0
    jz trw_term
    stb [r2, 0], r3        ; <-- same unbounded copy pattern
    addi r1, r1, 1
    addi r2, r2, 1
    jmp trw_copy
trw_term:
    movi r3, 0
    stb [r2, 0], r3
    mov r0, sp
    ld r3, [fp, -8]
    callr r3               ; <-- hijacked when the copy ran 64+ bytes
    mov sp, fp
    pop fp
    ret

default_matcher:
    movi r1, alias_icons
    movi r2, 7
    call strncmp
    cmpi r0, 0
    jz dm_yes
    movi r0, 0
    ret
dm_yes:
    movi r0, 1
    ret

.data
method_get: .string "GET "
rw_prefix: .string "/rw/"
alias_icons: .string "/icons/"
resp_ok: .string "HTTP/1.0 200 OK\r\n\r\n<html>ok</html>\n"
resp_bad: .string "HTTP/1.0 400 Bad Request\r\n\r\n"
reqbuf: .space 1032
{LIB_ASM}
{RT_ASM}
"#
    )
}

/// Build the Apache1 app.
pub fn app() -> Result<App, SvmError> {
    App::build(
        "Apache1",
        "Apache-1.3.27 web server",
        "CVE-2003-0542",
        BugType::StackSmash,
        "Local exploitable vulnerability enables unauthorized access",
        source(),
    )
}

/// A benign request with a short URI.
pub fn benign_request(path: &str) -> Vec<u8> {
    format!("GET /{} HTTP/1.0\n", path.trim_start_matches('/')).into_bytes()
}

/// Bytes of the smash region: 64 filler + saved-fp + return address.
fn overflow(ret: u32) -> Vec<u8> {
    let mut v = vec![b'A'; STACK_BUF];
    v.extend_from_slice(&0x4141_4141u32.to_le_bytes()); // Fake saved fp.
    v.extend_from_slice(&ret.to_le_bytes());
    v
}

fn forbidden(b: u8) -> bool {
    // The copy loop stops at space or NUL; those bytes must not appear in
    // the overflow region.
    b == b' ' || b == 0
}

/// The compromise exploit, crafted against `assumed`: smashes the return
/// address to jump into shellcode placed in `reqbuf`, which writes the
/// compromise marker to the attacker's connection.
///
/// Succeeds iff the victim's actual data-segment base matches the
/// attacker's assumption; under randomization it faults at the `ret` in
/// `try_alias_list` instead.
pub fn exploit_compromise(a: &App, assumed: &Layout) -> Exploit {
    let reqbuf_off = a.program.symbols["reqbuf"].off;
    let reqbuf_addr = assumed.data_base + reqbuf_off;
    let prefix = b"GET ";
    // Pick a shellcode offset whose absolute address has no forbidden
    // bytes (the ret bytes travel through the overflow copy).
    let min_off = prefix.len() + (STACK_BUF + 8) + 1;
    let mut sc_off = min_off;
    loop {
        let addr = reqbuf_addr + sc_off as u32;
        if addr.to_le_bytes().iter().all(|b| !forbidden(*b)) {
            break;
        }
        sc_off += 1;
    }
    let sc_addr = reqbuf_addr + sc_off as u32;
    let mut input = Vec::new();
    input.extend_from_slice(prefix);
    input.extend_from_slice(&overflow(sc_addr));
    input.push(b' '); // Terminates the copy; everything after survives in reqbuf.
    while input.len() < sc_off {
        input.push(b'N');
    }
    input.extend_from_slice(&shellcode(sc_addr));
    Exploit {
        app: "Apache1",
        input,
        variant: "compromise (layout-dependent)",
    }
}

/// The function-pointer-overwrite exploit variant (paper §5.2's
/// hypothetical second exploitation route): a `/rw/` URI whose copy
/// overruns the 64-byte rule buffer by exactly one word, redirecting the
/// matcher function pointer *without touching any return address*. The
/// initial (ret-addr-guard) VSEF cannot see this; taint analysis catches
/// the tainted `callr` target.
pub fn exploit_fnptr(a: &App, assumed: &Layout) -> Exploit {
    let reqbuf_off = a.program.symbols["reqbuf"].off;
    let reqbuf_addr = assumed.data_base + reqbuf_off;
    let prefix = b"GET ";
    // URI = "/rw/" + filler to fill the 64-byte buffer + fn-ptr word.
    let uri_fill = STACK_BUF - 4; // "/rw/" occupies the first 4 bytes.
    let min_off = prefix.len() + 4 + uri_fill + 4 + 1;
    let mut sc_off = min_off;
    loop {
        let addr = reqbuf_addr + sc_off as u32;
        if addr.to_le_bytes().iter().all(|b| !forbidden(*b)) {
            break;
        }
        sc_off += 1;
    }
    let sc_addr = reqbuf_addr + sc_off as u32;
    let mut input = Vec::new();
    input.extend_from_slice(prefix);
    input.extend_from_slice(b"/rw/");
    input.extend_from_slice(&[b'F'].repeat(uri_fill));
    input.extend_from_slice(&sc_addr.to_le_bytes());
    input.push(b' ');
    while input.len() < sc_off {
        input.push(b'N');
    }
    input.extend_from_slice(&shellcode(sc_addr));
    Exploit {
        app: "Apache1",
        input,
        variant: "fn-pointer hijack (layout-dependent)",
    }
}

/// Deterministic-crash form of the fn-pointer variant (target unmapped
/// under every layout).
pub fn exploit_fnptr_crash(_a: &App) -> Exploit {
    let mut input = Vec::new();
    input.extend_from_slice(b"GET /rw/");
    input.extend_from_slice(&[b'F'].repeat(STACK_BUF - 4));
    input.extend_from_slice(&0x6969_6969u32.to_le_bytes());
    input.extend_from_slice(b" HTTP/1.0\n");
    Exploit {
        app: "Apache1",
        input,
        variant: "fn-pointer hijack (crash)",
    }
}

/// The deterministic-crash exploit: return address `0x66666666` is
/// unmapped under every layout, so the smashed `ret` always faults.
pub fn exploit_crash(_a: &App) -> Exploit {
    let mut input = Vec::new();
    input.extend_from_slice(b"GET ");
    input.extend_from_slice(&overflow(0x6666_6666));
    input.extend_from_slice(b" /trigger/crash.html HTTP/1.0\n");
    Exploit {
        app: "Apache1",
        input,
        variant: "crash (layout-independent)",
    }
}

/// A polymorphic variant of the crash exploit: same vulnerability, byte-
/// level different filler (defeats exact-match input signatures; VSEFs
/// still catch it).
pub fn exploit_crash_poly(_a: &App, salt: u8) -> Exploit {
    let mut v: Vec<u8> = (0..STACK_BUF as u8)
        .map(|i| b'a' + ((i ^ salt) % 24))
        .collect();
    v.extend_from_slice(&0x4242_4242u32.to_le_bytes());
    v.extend_from_slice(&0x6666_7778u32.to_le_bytes());
    let mut input = Vec::new();
    input.extend_from_slice(b"GET ");
    input.extend_from_slice(&v);
    input.extend_from_slice(b" HTTP/1.0\n");
    Exploit {
        app: "Apache1",
        input,
        variant: "crash (polymorphic)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::is_compromised;
    use svm::loader::Aslr;
    use svm::{Fault, Machine, NopHook, Status};

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 200_000_000)
    }

    #[test]
    fn serves_benign_requests() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        m.net.push_connection(benign_request("index.html"));
        m.net.push_connection(b"POST / HTTP/1.0\n".to_vec());
        drive(&mut m);
        let ok = m.net.conn(0).expect("c0");
        assert!(ok.output.starts_with(b"HTTP/1.0 200"));
        assert!(ok.closed);
        assert!(m
            .net
            .conn(1)
            .expect("c1")
            .output
            .starts_with(b"HTTP/1.0 400"));
        assert!(
            matches!(m.status(), Status::Blocked(_)),
            "server still alive"
        );
    }

    #[test]
    fn compromise_succeeds_when_layout_guessed() {
        let a = app().expect("app");
        let layout = Layout::nominal();
        let mut m = a.boot_at(layout).expect("boot");
        let ex = exploit_compromise(&a, &layout);
        m.net.push_connection(ex.input);
        drive(&mut m);
        assert!(is_compromised(&m), "shellcode ran and wrote the marker");
    }

    #[test]
    fn compromise_faults_under_aslr() {
        let a = app().expect("app");
        // The attacker assumes the nominal layout; the victim randomizes.
        let ex = exploit_compromise(&a, &Layout::nominal());
        let mut m = a.boot(Aslr::on(0xfeed)).expect("boot");
        m.net.push_connection(ex.input);
        let s = drive(&mut m);
        assert!(
            matches!(s, Status::Faulted(_)),
            "ASLR turned compromise into a crash: {s:?}"
        );
        assert!(!is_compromised(&m));
    }

    #[test]
    fn crash_exploit_faults_at_the_ret_in_try_alias_list() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(7)).expect("boot");
        m.net.push_connection(exploit_crash(&a).input);
        let s = drive(&mut m);
        let Status::Faulted(f) = s else {
            panic!("expected fault, got {s:?}")
        };
        // The smashed `ret` jumped to the attacker's bogus address: the
        // fault is an instruction *fetch* at an unresolvable pc. (Like a
        // real post-ret crash, EIP is garbage; the core-dump analyzer's
        // stack scan attributes it to `try_alias_list`.)
        assert!(
            matches!(
                f,
                Fault::Unmapped {
                    addr: 0x6666_6666,
                    access: svm::Access::Exec,
                    ..
                }
            ),
            "{f:?}"
        );
        assert!(
            m.symbols.resolve(f.pc()).is_none(),
            "wild pc resolves to nothing"
        );
    }

    #[test]
    fn poly_variants_differ_but_both_crash() {
        let a = app().expect("app");
        let e1 = exploit_crash_poly(&a, 1);
        let e2 = exploit_crash_poly(&a, 9);
        assert_ne!(e1.input, e2.input);
        for e in [e1, e2] {
            let mut m = a.boot(Aslr::on(3)).expect("boot");
            m.net.push_connection(e.input);
            assert!(matches!(drive(&mut m), Status::Faulted(_)));
        }
    }

    #[test]
    fn rewrite_path_serves_benign_rules() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        m.net
            .push_connection(b"GET /rw/icons/logo.png HTTP/1.0\n".to_vec());
        m.net.push_connection(b"GET /rw/short HTTP/1.0\n".to_vec());
        drive(&mut m);
        for i in 0..2 {
            assert!(
                m.net
                    .conn(i)
                    .expect("c")
                    .output
                    .starts_with(b"HTTP/1.0 200"),
                "rewrite request {i} served"
            );
        }
        assert!(matches!(m.status(), Status::Blocked(_)));
    }

    #[test]
    fn fnptr_variant_compromises_without_touching_return_addresses() {
        let a = app().expect("app");
        let layout = Layout::nominal();
        let mut m = a.boot_at(layout).expect("boot");
        m.net.push_connection(exploit_fnptr(&a, &layout).input);
        drive(&mut m);
        assert!(is_compromised(&m), "fn-pointer hijack ran shellcode");
    }

    #[test]
    fn fnptr_crash_faults_at_the_callr_with_consistent_stack() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(21)).expect("boot");
        m.net.push_connection(exploit_fnptr_crash(&a).input);
        let s = drive(&mut m);
        let Status::Faulted(f) = s else {
            panic!("{s:?}")
        };
        assert!(
            matches!(
                f,
                Fault::Unmapped {
                    addr: 0x6969_6969,
                    access: svm::Access::Exec,
                    ..
                }
            ),
            "{f:?}"
        );
        // Unlike the ret smash, the frame-pointer chain is intact: the
        // crash looks "stack consistent" to static analysis — exactly why
        // the initial ret-addr VSEF is insufficient for this variant.
    }

    #[test]
    fn server_survives_uri_at_exact_buffer_size() {
        // 63 chars + NUL fits the 64-byte buffer: no smash.
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        let uri: String = "/".repeat(63);
        m.net
            .push_connection(format!("GET {uri} HTTP/1.0\n").into_bytes());
        drive(&mut m);
        assert!(m
            .net
            .conn(0)
            .expect("c")
            .output
            .starts_with(b"HTTP/1.0 200"));
    }
}
