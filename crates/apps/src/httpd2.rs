//! mini-httpd v2 — the Apache 1.3.12 / CVE-2003-1054 analogue.
//!
//! A variant HTTP server that logs the `Referer:` header. The scheme
//! parser sets the host pointer only for `http://` and `ftp://` referers;
//! any other scheme leaves it NULL, and `is_ip` dereferences it — a
//! remotely triggerable NULL-pointer dereference (denial of service),
//! matching the paper's Apache2 row: crash at `is_ip`, input signature
//! "`Referer:` not followed by `http://` or `ftp://`".

use svm::stdlib::LIB_ASM;
use svm::SvmError;

use crate::common::{App, BugType, Exploit, RT_ASM};

fn source() -> String {
    format!(
        r#"
; mini-httpd v2 (Apache2 analogue) — NULL deref in Referer handling.
.text
main:
    sys accept
    mov r10, r0
    mov r0, r10
    movi r1, reqbuf
    movi r2, 1024
    sys read
    cmpi r0, 0
    jz conn_done
    movi r1, reqbuf
    add r1, r1, r0
    movi r2, 0
    stb [r1, 0], r2
    call handle_request
conn_done:
    mov r0, r10
    sys close
    jmp main

handle_request:
    push fp
    mov fp, sp
    movi r0, reqbuf
    movi r1, method_get
    movi r2, 4
    call strncmp
    cmpi r0, 0
    jnz hr_bad
    movi r0, reqbuf
    call check_referer
    mov r0, r10
    movi r1, resp_ok
    call write_cstr
    jmp hr_out
hr_bad:
    mov r0, r10
    movi r1, resp_bad
    call write_cstr
hr_out:
    mov sp, fp
    pop fp
    ret

; Scan header lines for "Referer: " and classify its host part.
check_referer:
    push r4
    push r5
    mov r4, r0             ; line cursor
cr_line:
    mov r0, r4
    movi r1, hdr_referer
    movi r2, 9
    call strncmp
    cmpi r0, 0
    jz cr_found
    mov r0, r4
    movi r1, '\n'
    call strchr
    cmpi r0, 0
    jz cr_none
    addi r4, r0, 1
    ldb r1, [r4, 0]
    cmpi r1, 0
    jz cr_none
    jmp cr_line
cr_found:
    addi r4, r4, 9         ; referer value
    movi r5, 0             ; host = NULL
    mov r0, r4
    movi r1, scheme_http
    movi r2, 7
    call strncmp
    cmpi r0, 0
    jnz cr_try_ftp
    addi r5, r4, 7
    jmp cr_check
cr_try_ftp:
    mov r0, r4
    movi r1, scheme_ftp
    movi r2, 6
    call strncmp
    cmpi r0, 0
    jnz cr_check           ; BUG: unknown scheme leaves host == NULL
    addi r5, r4, 6
cr_check:
    mov r0, r5
    call is_ip             ; dereferences host
cr_none:
    pop r5
    pop r4
    ret

; Returns 1 if the host string starts with a digit.
is_ip:
    ldb r1, [r0, 0]        ; <-- NULL dereference when host is NULL
    cmpi r1, '0'
    jlt ii_no
    cmpi r1, '9'
    jgt ii_no
    movi r0, 1
    ret
ii_no:
    movi r0, 0
    ret

.data
method_get: .string "GET "
hdr_referer: .string "Referer: "
scheme_http: .string "http://"
scheme_ftp: .string "ftp://"
resp_ok: .string "HTTP/1.0 200 OK\r\n\r\n<html>ok</html>\n"
resp_bad: .string "HTTP/1.0 400 Bad Request\r\n\r\n"
reqbuf: .space 1032
{LIB_ASM}
{RT_ASM}
"#
    )
}

/// Build the Apache2 app.
pub fn app() -> Result<App, SvmError> {
    App::build(
        "Apache2",
        "Apache-1.3.12 web server",
        "CVE-2003-1054",
        BugType::NullDeref,
        "Remotely exploitable vulnerability allows disruption of service",
        source(),
    )
}

/// A benign request, optionally with a well-formed referer.
pub fn benign_request(path: &str, referer: Option<&str>) -> Vec<u8> {
    let mut s = format!("GET /{} HTTP/1.0\n", path.trim_start_matches('/'));
    if let Some(r) = referer {
        s.push_str(&format!("Referer: {r}\n"));
    }
    s.into_bytes()
}

/// The exploit: a `Referer` with an unrecognized scheme. Crashes the
/// server (NULL dereference) under every layout — this vulnerability is
/// DoS-only, exactly as Table 1 describes.
pub fn exploit_crash(_a: &App) -> Exploit {
    Exploit {
        app: "Apache2",
        input: b"GET /page.html HTTP/1.0\nReferer: gopher://evil.example/\n".to_vec(),
        variant: "crash (NULL deref, layout-independent)",
    }
}

/// A polymorphic variant with a different unrecognized scheme and path.
pub fn exploit_crash_poly(_a: &App, salt: u8) -> Exploit {
    let scheme = match salt % 4 {
        0 => "gopher",
        1 => "wais",
        2 => "telnet",
        _ => "xyz",
    };
    Exploit {
        app: "Apache2",
        input: format!("GET /v{salt} HTTP/1.0\nReferer: {scheme}://h{salt}/\n").into_bytes(),
        variant: "crash (polymorphic)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::loader::Aslr;
    use svm::{Machine, NopHook, Status};

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 200_000_000)
    }

    #[test]
    fn benign_referers_are_fine() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(5)).expect("boot");
        m.net.push_connection(benign_request("x", None));
        m.net
            .push_connection(benign_request("y", Some("http://ok.example/")));
        m.net
            .push_connection(benign_request("z", Some("ftp://ok.example/")));
        drive(&mut m);
        for i in 0..3 {
            assert!(
                m.net
                    .conn(i)
                    .expect("c")
                    .output
                    .starts_with(b"HTTP/1.0 200"),
                "request {i} served"
            );
        }
        assert!(matches!(m.status(), Status::Blocked(_)));
    }

    #[test]
    fn bad_scheme_null_derefs_in_is_ip() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(11)).expect("boot");
        m.net.push_connection(exploit_crash(&a).input);
        let s = drive(&mut m);
        let Status::Faulted(f) = s else {
            panic!("{s:?}")
        };
        assert!(f.is_null_deref(), "{f:?}");
        assert_eq!(m.symbols.resolve(f.pc()).expect("sym").name, "is_ip");
    }

    #[test]
    fn poly_variants_all_crash() {
        let a = app().expect("app");
        for salt in 0..4 {
            let mut m = a.boot(Aslr::on(salt as u64)).expect("boot");
            m.net.push_connection(exploit_crash_poly(&a, salt).input);
            assert!(matches!(drive(&mut m), Status::Faulted(f) if f.is_null_deref()));
        }
    }

    #[test]
    fn referer_on_second_line_is_found() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        m.net.push_connection(
            b"GET /a HTTP/1.0\nHost: x\nReferer: gopher://e/\nAccept: */*\n".to_vec(),
        );
        assert!(matches!(drive(&mut m), Status::Faulted(f) if f.is_null_deref()));
    }
}
