//! mini-squid — the squid-2.3 / CVE-2002-0068 analogue (paper Figure 2).
//!
//! An FTP-proxy request handler reproducing the exact bug the paper walks
//! through: `ftp_build_title_url` allocates the title buffer `t` as
//! `64 + strlen(user)` bytes, but `rfc1738_escape_part` can expand the
//! user to `3 * strlen(user)` bytes (each unsafe character becomes
//! `%XX`), and the unbounded library `strcat` then overflows `t` into the
//! adjacent chunk's boundary tag. The following `free(buf)` trips the
//! allocator's glibc-style size check — a `HeapAbort` fault inside
//! library `free`, with the heap inconsistent: Sweeper's detection
//! signal. Replay-time memory-bug detection pinpoints the overflowing
//! store inside `strcat` called by `ftp_build_title_url`, reproducing the
//! paper's headline VSEF.

use svm::stdlib::LIB_ASM;
use svm::SvmError;

use crate::common::{App, BugType, Exploit, RT_ASM};

fn source() -> String {
    format!(
        r#"
; mini-squid (Squid analogue) — heap overflow via strcat in
; ftp_build_title_url (CVE-2002-0068, paper Figure 2).
.text
main:
    sys accept
    mov r10, r0
    mov r0, r10
    movi r1, reqbuf
    movi r2, 4096
    sys read
    cmpi r0, 0
    jz conn_done
    movi r1, reqbuf
    add r1, r1, r0
    movi r2, 0
    stb [r1, 0], r2
    call handle_request
conn_done:
    mov r0, r10
    sys close
    jmp main

handle_request:
    push r4
    movi r0, reqbuf
    movi r1, scheme_ftp
    movi r2, 6
    call strncmp
    cmpi r0, 0
    jnz hr_bad
    movi r0, reqbuf+6
    movi r1, '@'
    call strchr
    cmpi r0, 0
    jz hr_nouser
    movi r1, 0
    stb [r0, 0], r1        ; split user@host
    movi r0, reqbuf+6
    call ftp_build_title_url
    mov r4, r0             ; t
    mov r0, r10
    mov r1, r4
    call write_cstr
    mov r0, r4
    call free
    jmp hr_out
hr_nouser:
    mov r0, r10
    movi r1, resp_anon
    call write_cstr
    jmp hr_out
hr_bad:
    mov r0, r10
    movi r1, resp_bad
    call write_cstr
hr_out:
    pop r4
    ret

; Build "ftp://<escaped user>" in a heap buffer sized 64 + strlen(user).
; Paper Figure 2, steps (1)-(3).
ftp_build_title_url:
    push r4
    push r5
    push r6
    mov r4, r0             ; user
    call strlen
    addi r0, r0, 64        ; (1) len = 64 + strlen(user)
    call malloc
    mov r5, r0             ; t
    mov r0, r5
    movi r1, title_pre
    call strcpy
    mov r0, r4
    call rfc1738_escape_part
    mov r6, r0             ; buf (sized strlen(user)*3 + 1)
    mov r0, r5
    mov r1, r6
    call strcat            ; (3) copy buf into t -- OVERFLOW
    mov r0, r6
    call free              ; <-- trips the size check on the trashed heap
    mov r0, r5
    pop r6
    pop r5
    pop r4
    ret

; Escape unsafe characters as %XX; output buffer strlen(s)*3 + 1 bytes.
rfc1738_escape_part:
    push r4
    push r5
    push r6
    mov r4, r0             ; src
    call strlen
    movi r1, 3
    mul r0, r0, r1
    addi r0, r0, 1         ; (2) bufsize = strlen(user)*3 + 1
    call malloc
    mov r5, r0             ; out base
    mov r6, r5             ; writer
resc_loop:
    ldb r1, [r4, 0]
    cmpi r1, 0
    jz resc_done
    call is_safe_char      ; r1 = char, result in r0
    cmpi r0, 0
    jnz resc_plain
    ; escape: '%' hexhi hexlo
    movi r2, '%'
    stb [r6, 0], r2
    addi r6, r6, 1
    mov r0, r1
    shri r0, r0, 4
    call hex_digit
    stb [r6, 0], r0
    addi r6, r6, 1
    mov r0, r1
    andi r0, r0, 15
    call hex_digit
    stb [r6, 0], r0
    addi r6, r6, 1
    jmp resc_next
resc_plain:
    stb [r6, 0], r1
    addi r6, r6, 1
resc_next:
    addi r4, r4, 1
    jmp resc_loop
resc_done:
    movi r1, 0
    stb [r6, 0], r1
    mov r0, r5
    pop r6
    pop r5
    pop r4
    ret

; Safe = anything except the RFC1738 unsafe punctuation set.
; (High-bit and control bytes pass through, as 2002-era squid did for
; the title path -- which is what made the real bug exploitable.)
is_safe_char:
    cmpi r1, '~'
    jz isc_unsafe
    cmpi r1, ' '
    jz isc_unsafe
    cmpi r1, '<'
    jz isc_unsafe
    cmpi r1, '>'
    jz isc_unsafe
    cmpi r1, '"'
    jz isc_unsafe
    cmpi r1, '#'
    jz isc_unsafe
    cmpi r1, '%'
    jz isc_unsafe
    cmpi r1, '{{'
    jz isc_unsafe
    cmpi r1, '}}'
    jz isc_unsafe
    cmpi r1, '|'
    jz isc_unsafe
    cmpi r1, '^'
    jz isc_unsafe
    cmpi r1, '['
    jz isc_unsafe
    cmpi r1, ']'
    jz isc_unsafe
    movi r0, 1
    ret
isc_unsafe:
    movi r0, 0
    ret

; r0 = nibble -> ASCII hex digit.
hex_digit:
    cmpi r0, 10
    jlt hd_num
    addi r0, r0, 87        ; 'a' - 10
    ret
hd_num:
    addi r0, r0, '0'
    ret

.data
scheme_ftp: .string "ftp://"
title_pre: .string "ftp://"
resp_anon: .string "ftp: anonymous listing\n"
resp_bad: .string "error: unsupported scheme\n"
reqbuf: .space 4104
{LIB_ASM}
{RT_ASM}
"#
    )
}

/// Build the Squid app.
pub fn app() -> Result<App, SvmError> {
    App::build(
        "Squid",
        "squid-2.3 proxy cache server",
        "CVE-2002-0068",
        BugType::HeapOverflow,
        "Remotely exploitable vulnerability provides unauthorized access and disruption of service",
        source(),
    )
}

/// A benign proxy request with a short user name.
pub fn benign_request(user: &str, host: &str) -> Vec<u8> {
    format!("ftp://{user}@{host}/pub/file\n").into_bytes()
}

/// The exploit (paper Figure 2): a user string dominated by unsafe
/// characters, so the escaped copy needs ~3x the space `t` reserves.
/// Layout-independent: the trashed boundary tag always aborts the
/// following `free`.
pub fn exploit_crash(_a: &App) -> Exploit {
    let user = "~".repeat(40);
    Exploit {
        app: "Squid",
        input: format!("ftp://{user}@ftp.site/\n").into_bytes(),
        variant: "crash (heap overflow, layout-independent)",
    }
}

/// Polymorphic variant: different unsafe characters and lengths, same
/// overflow.
pub fn exploit_crash_poly(_a: &App, salt: u8) -> Exploit {
    let ch = ['~', '^', '|', '['][salt as usize % 4];
    let user: String = std::iter::repeat_n(ch, 36 + (salt as usize % 5) * 4).collect();
    Exploit {
        app: "Squid",
        input: format!("ftp://{user}@h{salt}/\n").into_bytes(),
        variant: "crash (polymorphic)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::loader::Aslr;
    use svm::{Fault, Machine, NopHook, Status};

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 400_000_000)
    }

    #[test]
    fn benign_requests_build_titles() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(1)).expect("boot");
        m.net.push_connection(benign_request("bob", "example.com"));
        m.net.push_connection(b"ftp://plain.example/\n".to_vec());
        m.net.push_connection(b"http://wrong.example/\n".to_vec());
        drive(&mut m);
        assert_eq!(m.net.conn(0).expect("c").output, b"ftp://bob");
        assert!(m
            .net
            .conn(1)
            .expect("c")
            .output
            .starts_with(b"ftp: anonymous"));
        assert!(m.net.conn(2).expect("c").output.starts_with(b"error"));
        assert!(matches!(m.status(), Status::Blocked(_)));
    }

    #[test]
    fn escaping_works_for_mixed_users() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        // One unsafe char: expansion fits comfortably.
        m.net.push_connection(b"ftp://a~b@host/\n".to_vec());
        drive(&mut m);
        assert_eq!(m.net.conn(0).expect("c").output, b"ftp://a%7eb");
    }

    #[test]
    fn overflow_aborts_in_library_free_with_heap_inconsistent() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(9)).expect("boot");
        m.net.push_connection(exploit_crash(&a).input);
        let s = drive(&mut m);
        let Status::Faulted(f) = s else {
            panic!("{s:?}")
        };
        assert!(matches!(f, Fault::HeapAbort { .. }), "{f:?}");
        assert_eq!(m.symbols.resolve(f.pc()).expect("sym").name, "free");
        // The heap really is inconsistent at the crash point.
        let (_, ok) = m.heap.walk(&m.mem);
        assert!(!ok, "boundary-tag chain broken by the overflow");
    }

    #[test]
    fn heap_recovers_across_benign_requests() {
        // Allocations are freed each request: heap usage stays bounded.
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        for i in 0..20 {
            m.net
                .push_connection(benign_request(&format!("user{i}"), "h"));
        }
        drive(&mut m);
        assert!(matches!(m.status(), Status::Blocked(_)));
        let (chunks, ok) = m.heap.walk(&m.mem);
        assert!(ok);
        assert!(
            chunks.iter().all(|(_, _, in_use)| !in_use),
            "everything freed"
        );
    }

    #[test]
    fn poly_variants_all_abort() {
        let a = app().expect("app");
        for salt in 0..4u8 {
            let mut m = a.boot(Aslr::on(100 + salt as u64)).expect("boot");
            m.net.push_connection(exploit_crash_poly(&a, salt).input);
            assert!(
                matches!(drive(&mut m), Status::Faulted(Fault::HeapAbort { .. })),
                "salt {salt}"
            );
        }
    }

    #[test]
    fn boundary_user_just_below_overflow_is_safe() {
        // 6 + 3u <= align8(64+u) for u = 28: safe. (u=40 overflows.)
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        let user = "~".repeat(28);
        m.net
            .push_connection(format!("ftp://{user}@h/\n").into_bytes());
        drive(&mut m);
        assert!(matches!(m.status(), Status::Blocked(_)), "no crash at u=28");
        assert!(m.net.conn(0).expect("c").output.starts_with(b"ftp://%7e"));
    }
}
