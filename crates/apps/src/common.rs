//! Shared scaffolding for the vulnerable guest servers.
//!
//! Each server (Table 1 analogue) exports: its assembly source, an
//! assembled [`Program`], exploit builders, and a benign-request
//! generator. The `malloc`/`free` library wrappers live here so that
//! heap faults are attributed to *library* code (the paper's crash sites
//! are `lib. free`/`lib. strcat`), with the application callsite one
//! frame up — recovered by the analyses via shadow call stacks.

use svm::asm::{assemble, Program};
use svm::loader::{Aslr, Layout};
use svm::{Machine, SvmError};

/// Marker string a successful compromise writes back on the connection;
/// the harness treats its presence as "host infected".
pub const PWNED_MARKER: &[u8] = b"0WNED-BY-WORM";

/// Library wrappers for the allocator syscalls.
///
/// Faults raised by corrupt heap metadata surface at the `sys` instruction
/// inside these wrappers, i.e. *inside the library*, matching the paper's
/// crash-site attribution.
pub const RT_ASM: &str = r#"
.lib
; --- malloc(size) -> ptr --------------------------------------------------
malloc:
    sys alloc
    ret

; --- free(ptr) ------------------------------------------------------------
free:
    sys free
    ret
"#;

/// The four bug classes of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BugType {
    /// Stack-smashing buffer overflow (Apache1, CVE-2003-0542 analogue).
    StackSmash,
    /// NULL-pointer dereference (Apache2, CVE-2003-1054 analogue).
    NullDeref,
    /// Double free (CVS, CVE-2003-0015 analogue).
    DoubleFree,
    /// Heap buffer overflow (Squid, CVE-2002-0068 analogue).
    HeapOverflow,
}

impl core::fmt::Display for BugType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            BugType::StackSmash => "Stack Smashing",
            BugType::NullDeref => "NULL Pointer",
            BugType::DoubleFree => "Double Free",
            BugType::HeapOverflow => "Heap Buffer Overflow",
        };
        write!(f, "{s}")
    }
}

/// A vulnerable server application (one row of Table 1).
pub struct App {
    /// Short name (`Apache1`, `Apache2`, `CVS`, `Squid`).
    pub name: &'static str,
    /// The real-world program it stands in for.
    pub stands_for: &'static str,
    /// The CVE it reproduces.
    pub cve: &'static str,
    /// Bug class.
    pub bug: BugType,
    /// Threat description (Table 1 column).
    pub threat: &'static str,
    /// Full assembly source.
    pub source: String,
    /// Assembled program.
    pub program: Program,
}

impl App {
    /// Assemble an app from its parts.
    pub fn build(
        name: &'static str,
        stands_for: &'static str,
        cve: &'static str,
        bug: BugType,
        threat: &'static str,
        source: String,
    ) -> Result<App, SvmError> {
        let program = assemble(&source)?;
        Ok(App {
            name,
            stands_for,
            cve,
            bug,
            threat,
            source,
            program,
        })
    }

    /// Boot a fresh instance under the given randomization policy.
    pub fn boot(&self, aslr: Aslr) -> Result<Machine, SvmError> {
        Machine::boot(&self.program, aslr)
    }

    /// Boot at an explicit layout (for compromise-variant experiments
    /// where the attacker's assumed layout matches reality).
    pub fn boot_at(&self, layout: Layout) -> Result<Machine, SvmError> {
        Machine::boot_with_layout(&self.program, layout)
    }
}

/// Whether a machine shows the compromise marker on any connection
/// output or in the debug log (i.e. attacker shellcode ran).
pub fn is_compromised(m: &Machine) -> bool {
    let has = |hay: &[u8]| hay.windows(PWNED_MARKER.len()).any(|w| w == PWNED_MARKER);
    m.net.conns().iter().any(|c| has(&c.output)) || has(&m.net.log)
}

/// Build the encoded shellcode used by compromise-variant exploits.
///
/// The payload runs with the connection id still live in `r10` (all our
/// servers keep it there): it writes [`PWNED_MARKER`] back on the
/// connection — the worm's "propagation" stand-in — then exits. The
/// marker string is embedded right after the code; `payload_base` is the
/// absolute guest address where the returned bytes will live.
pub fn shellcode(payload_base: u32) -> Vec<u8> {
    use svm::isa::{Op, Reg, Syscall};
    let insns = 5;
    let marker_addr = payload_base + insns * 8;
    let mut code = Vec::new();
    code.extend_from_slice(
        &Op::Mov {
            rd: Reg::R0,
            rs: Reg(10),
        }
        .encode(),
    );
    code.extend_from_slice(
        &Op::MovI {
            rd: Reg::R1,
            imm: marker_addr,
        }
        .encode(),
    );
    code.extend_from_slice(
        &Op::MovI {
            rd: Reg::R2,
            imm: PWNED_MARKER.len() as u32,
        }
        .encode(),
    );
    code.extend_from_slice(
        &Op::Sys {
            num: Syscall::Write.num(),
        }
        .encode(),
    );
    code.extend_from_slice(
        &Op::Sys {
            num: Syscall::Exit.num(),
        }
        .encode(),
    );
    debug_assert_eq!(code.len() as u32, insns * 8);
    code.extend_from_slice(PWNED_MARKER);
    code
}

/// An attack request paired with provenance, for harnesses.
#[derive(Debug, Clone)]
pub struct Exploit {
    /// Which app it targets.
    pub app: &'static str,
    /// Raw request bytes.
    pub input: Vec<u8>,
    /// Human description of the variant.
    pub variant: &'static str,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shellcode_embeds_marker_after_code() {
        let sc = shellcode(0x1000);
        assert_eq!(&sc[40..], PWNED_MARKER);
        // First instruction decodes.
        let mut w = [0u8; 8];
        w.copy_from_slice(&sc[..8]);
        assert!(svm::isa::Op::decode(w, 0).is_ok());
    }

    #[test]
    fn rt_asm_assembles_alone() {
        let src = format!(".text\nmain:\n movi r0, 32\n call malloc\n halt\n{RT_ASM}");
        let prog = assemble(&src).expect("asm");
        assert!(prog.symbols.contains_key("malloc"));
        assert!(prog.symbols.contains_key("free"));
    }
}
