//! Benign workload generation for throughput/overhead experiments.
//!
//! Deterministic (seeded) request streams per application, used by the
//! Figure 4/5 harnesses and the benchmark suite. Request mixes are mild
//! variations so exact-match caches can't trivialize the work.

use svm::rng::XorShift64;

use crate::{cvs, httpd1, httpd2, squid};

/// Which app a workload targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// mini-httpd v1.
    Apache1,
    /// mini-httpd v2.
    Apache2,
    /// mini-cvs.
    Cvs,
    /// mini-squid.
    Squid,
}

/// A deterministic benign request generator.
pub struct Workload {
    target: Target,
    rng: XorShift64,
    count: u64,
}

impl Workload {
    /// A workload for `target` seeded with `seed`.
    pub fn new(target: Target, seed: u64) -> Workload {
        Workload {
            target,
            rng: XorShift64::new(seed),
            count: 0,
        }
    }

    /// Number of requests generated so far.
    pub fn generated(&self) -> u64 {
        self.count
    }

    /// The next benign request.
    pub fn next_request(&mut self) -> Vec<u8> {
        self.count += 1;
        let n = self.rng.below(1000);
        match self.target {
            Target::Apache1 => {
                let depth = 1 + (n % 3);
                let mut path = String::new();
                for d in 0..depth {
                    path.push_str(&format!("dir{}/", (n + d) % 17));
                }
                path.push_str(&format!("page{}.html", n % 29));
                httpd1::benign_request(&path)
            }
            Target::Apache2 => {
                let referer = match n % 3 {
                    0 => None,
                    1 => Some(format!("http://site{}.example/", n % 11)),
                    _ => Some(format!("ftp://mirror{}.example/", n % 7)),
                };
                httpd2::benign_request(&format!("doc{}.html", n % 23), referer.as_deref())
            }
            Target::Cvs => {
                let d1 = format!("mod{}", n % 13);
                let d2 = format!("sub{}", n % 5);
                cvs::benign_session(&[&d1, &d2])
            }
            Target::Squid => {
                let user = format!("user{}", n % 19);
                let host = format!("ftp{}.example.com", n % 9);
                squid::benign_request(&user, &host)
            }
        }
    }

    /// Generate a batch of `n` requests.
    pub fn batch(&mut self, n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svm::loader::Aslr;
    use svm::{Machine, NopHook, Status};

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 1_000_000_000)
    }

    #[test]
    fn workloads_are_deterministic() {
        let mut a = Workload::new(Target::Squid, 7);
        let mut b = Workload::new(Target::Squid, 7);
        assert_eq!(a.batch(10), b.batch(10));
        let mut c = Workload::new(Target::Squid, 8);
        assert_ne!(a.batch(10), c.batch(10));
    }

    #[test]
    fn every_target_survives_a_batch() {
        for (target, app) in [
            (Target::Apache1, httpd1::app().expect("a1")),
            (Target::Apache2, httpd2::app().expect("a2")),
            (Target::Cvs, cvs::app().expect("cvs")),
            (Target::Squid, squid::app().expect("squid")),
        ] {
            let mut m = app.boot(Aslr::on(42)).expect("boot");
            let mut w = Workload::new(target, 1);
            for req in w.batch(25) {
                m.net.push_connection(req);
            }
            let s = drive(&mut m);
            assert!(
                matches!(s, Status::Blocked(_)),
                "{} should survive benign traffic: {s:?}",
                app.name
            );
            // All 25 connections got a response.
            for i in 0..25 {
                assert!(
                    !m.net.conn(i).expect("conn").output.is_empty(),
                    "{} conn {i} unanswered",
                    app.name
                );
            }
        }
    }
}
