//! # apps — the vulnerable guest servers (Table 1 analogues)
//!
//! Three server applications written in SVM assembly, carrying four real
//! (re-created) memory-safety vulnerabilities with the same bug classes,
//! crash-site attribution, and exploit mechanics as the CVEs the paper
//! evaluates:
//!
//! | App | Stands for | CVE | Bug |
//! |-----|------------|-----|-----|
//! | [`httpd1`] | Apache 1.3.27 | CVE-2003-0542 | stack smashing |
//! | [`httpd2`] | Apache 1.3.12 | CVE-2003-1054 | NULL pointer deref |
//! | [`cvs`] | cvs 1.11.4 | CVE-2003-0015 | double free |
//! | [`squid`] | squid 2.3 | CVE-2002-0068 | heap buffer overflow |
//!
//! Each module exports the assembled [`common::App`], benign request
//! builders, and exploit builders (a layout-independent crash variant,
//! polymorphic variants, and — where the bug admits code execution — a
//! layout-dependent compromise variant that runs marker shellcode).
//! [`workload`] provides deterministic benign traffic for the overhead
//! experiments.

pub mod common;
pub mod cvs;
pub mod httpd1;
pub mod httpd2;
pub mod squid;
pub mod workload;

pub use common::{is_compromised, shellcode, App, BugType, Exploit, PWNED_MARKER};

/// All four apps, in Table 1 order.
pub fn all_apps() -> Result<Vec<App>, svm::SvmError> {
    Ok(vec![
        httpd1::app()?,
        httpd2::app()?,
        cvs::app()?,
        squid::app()?,
    ])
}

/// The canonical crash exploit for each app, in Table 1 order.
pub fn all_crash_exploits() -> Result<Vec<(App, Exploit)>, svm::SvmError> {
    Ok(vec![
        (httpd1::app()?, httpd1::exploit_crash(&httpd1::app()?)),
        (httpd2::app()?, httpd2::exploit_crash(&httpd2::app()?)),
        (cvs::app()?, cvs::exploit_crash(&cvs::app()?)),
        (squid::app()?, squid::exploit_crash(&squid::app()?)),
    ])
}
