//! mini-cvs — the cvs-1.11.4 / CVE-2003-0015 analogue.
//!
//! A line-command protocol server (`Root`, `Directory`, `Entry`, `done`).
//! `dirswitch` frees the previous directory buffer before allocating a
//! new one, but its malformed-name error path forgets to clear the
//! pointer — so the *next* `Directory` command frees it again. The double
//! free leaves the chunk both allocated and on the free list; a later
//! `Directory` writes attacker bytes over the free-list `fd`/`bk` words,
//! and the next allocation's unlink performs an attacker-controlled
//! 4-byte write. The compromise variant uses it to overwrite the `done`
//! response function pointer with the address of shellcode parked in the
//! static `Root` buffer; under address-space randomization the unlink
//! write misses and the server faults inside library `malloc` instead —
//! the detection signal.

use svm::loader::Layout;
use svm::stdlib::LIB_ASM;
use svm::SvmError;

use crate::common::{App, BugType, Exploit, RT_ASM};

fn source() -> String {
    format!(
        r#"
; mini-cvs (CVS analogue) — double free in dirswitch.
.text
main:
    sys accept
    mov r10, r0
    ; reset per-session state
    movi r1, cur_dir
    movi r2, 0
    st [r1, 0], r2
cvs_loop:
    call read_line
    cmpi r0, 0
    jz cvs_done
    movi r0, linebuf
    movi r1, cmd_root
    movi r2, 5
    call strncmp
    cmpi r0, 0
    jz do_root
    movi r0, linebuf
    movi r1, cmd_dir
    movi r2, 10
    call strncmp
    cmpi r0, 0
    jz do_dir
    movi r0, linebuf
    movi r1, cmd_entry
    movi r2, 6
    call strncmp
    cmpi r0, 0
    jz do_entry
    movi r0, linebuf
    movi r1, cmd_done
    call strcmp
    cmpi r0, 0
    jz do_done
    mov r0, r10
    movi r1, resp_err
    call write_cstr
    jmp cvs_loop
do_root:
    movi r0, rootbuf
    movi r1, linebuf+5
    movi r2, 200
    call memcpy            ; Root path into the static buffer (fixed len)
    mov r0, r10
    movi r1, resp_ok
    call write_cstr
    jmp cvs_loop
do_dir:
    movi r0, linebuf+10
    call dirswitch
    cmpi r0, 0
    jnz dir_err
    mov r0, r10
    movi r1, resp_ok
    call write_cstr
    jmp cvs_loop
dir_err:
    mov r0, r10
    movi r1, resp_badname
    call write_cstr
    jmp cvs_loop
do_entry:
    movi r0, linebuf+6
    call add_entry
    mov r0, r10
    movi r1, resp_ok
    call write_cstr
    jmp cvs_loop
do_done:
    movi r1, respond_fn
    ld r1, [r1, 0]
    callr r1               ; dispatch through fn pointer (hijack target)
cvs_done:
    mov r0, r10
    sys close
    jmp main

respond_done:
    mov r0, r10
    movi r1, resp_done
    call write_cstr
    ret

; Read one '\n'-terminated line into linebuf (max 250 bytes).
read_line:
    push r4
    push r5
    movi r4, linebuf
    movi r5, 0
rl_loop:
    mov r0, r10
    mov r1, r4
    movi r2, 1
    sys read
    cmpi r0, 0
    jz rl_end
    ldb r1, [r4, 0]
    cmpi r1, '\n'
    jz rl_end
    addi r4, r4, 1
    addi r5, r5, 1
    cmpi r5, 250
    jlt rl_loop
rl_end:
    movi r1, 0
    stb [r4, 0], r1
    mov r0, r5
    pop r5
    pop r4
    ret

; Switch current directory: frees the old buffer, allocates a new one.
; BUG: the bad-name error path returns without clearing cur_dir, so the
; next call frees the same pointer again (the CVE-2003-0015 pattern).
dirswitch:
    push r4
    push r5
    mov r4, r0             ; name
    movi r5, cur_dir
    ld r0, [r5, 0]
    cmpi r0, 0
    jz dirswitch_fresh
    call free              ; <-- the double-free site
dirswitch_fresh:
    ldb r1, [r4, 0]
    cmpi r1, '/'
    jz dirswitch_badname
    movi r0, 64
    call malloc
    st [r5, 0], r0
    mov r1, r4
    call strcpy            ; directory name into the (re)allocated buffer
    movi r0, 0
    pop r5
    pop r4
    ret
dirswitch_badname:
    movi r0, 1             ; error -- but cur_dir still points at freed chunk
    pop r5
    pop r4
    ret

; Record an entry: allocate a fresh buffer and copy the data into it.
add_entry:
    push r4
    push r5
    mov r4, r0
    movi r0, 64
    call malloc            ; <-- unlink of the corrupted list fires here
    cmpi r0, 0
    jz ae_out
    mov r5, r0
    mov r0, r4
    call strlen
    cmpi r0, 60
    jle ae_len_ok
    movi r0, 60
ae_len_ok:
    mov r2, r0
    mov r0, r5
    mov r1, r4
    call memcpy
ae_out:
    pop r5
    pop r4
    ret

.data
cmd_root: .string "Root "
cmd_dir: .string "Directory "
cmd_entry: .string "Entry "
cmd_done: .string "done"
resp_ok: .string "ok\n"
resp_err: .string "error unknown command\n"
resp_badname: .string "error bad directory name\n"
resp_done: .string "ok: session complete\n"
; Padding pushes the slots below past offset 0x100 so their absolute
; addresses contain no NUL bytes (they travel through a strcpy in the
; exploit path -- the classic constraint).
pad: .space 300
cur_dir: .word 0
respond_fn: .word respond_done
rootbuf: .space 256
linebuf: .space 256
{LIB_ASM}
{RT_ASM}
"#
    )
}

/// Build the CVS app.
pub fn app() -> Result<App, SvmError> {
    App::build(
        "CVS",
        "cvs-1.11.4 version control server",
        "CVE-2003-0015",
        BugType::DoubleFree,
        "Remotely exploitable vulnerability provides unauthorized access and disruption of service",
        source(),
    )
}

/// A benign session: set a root, a couple of directories and entries.
pub fn benign_session(dirs: &[&str]) -> Vec<u8> {
    let mut s = String::from("Root /repo\n");
    for d in dirs {
        s.push_str(&format!("Directory {d}\nEntry file-{d}\n"));
    }
    s.push_str("done\n");
    s.into_bytes()
}

fn forbidden(b: u8) -> bool {
    b == b'\n' || b == 0
}

/// Build the attack command stream against an assumed layout.
///
/// `fd`/`bk` are the unlink operands: the victim performs
/// `*(fd+12) = bk; *(bk+8) = fd` at the next allocation.
fn attack_stream(fd: u32, bk: u32, root_payload: &[u8]) -> Vec<u8> {
    let mut s = Vec::new();
    s.extend_from_slice(b"Root ");
    s.extend_from_slice(root_payload);
    s.extend_from_slice(b"\n");
    s.extend_from_slice(b"Directory aaaa\n"); // Allocate cur_dir = A.
    s.extend_from_slice(b"Directory /bad\n"); // free(A); pointer kept (bug).
                                              // free(A) again (double free), then the same chunk is re-allocated and
                                              // the name bytes land over its in-list fd/bk words.
    s.extend_from_slice(b"Directory ");
    s.extend_from_slice(&fd.to_le_bytes());
    s.extend_from_slice(&bk.to_le_bytes());
    s.extend_from_slice(b"pad\n");
    // Next allocation walks the corrupted list: unlink -> arbitrary write.
    s.extend_from_slice(b"Entry xx\n");
    // Dispatch through the (now overwritten) function pointer.
    s.extend_from_slice(b"done\n");
    s
}

/// The compromise exploit: the unlink write redirects `respond_fn` to
/// shellcode parked in `rootbuf`; `done` then runs it.
pub fn exploit_compromise(a: &App, assumed: &Layout) -> Exploit {
    let respond_fn = assumed.data_base + a.program.symbols["respond_fn"].off;
    let rootbuf = assumed.data_base + a.program.symbols["rootbuf"].off;
    // The unlink also writes `*(bk+8) = fd`, clobbering shellcode bytes
    // 8..12 — so the payload leads with a jump over a 16-byte hole.
    let sc_base = rootbuf;
    let mut payload = Vec::new();
    payload.extend_from_slice(
        &svm::isa::Op::Jmp {
            target: sc_base + 16,
        }
        .encode(),
    );
    payload.extend_from_slice(&[b'J'; 8]); // Clobbered by the unlink.
    payload.extend_from_slice(&shellcode_log(sc_base + 16));
    // Root-payload delivery is a fixed-length memcpy of the read line:
    // only the line terminator is forbidden.
    assert!(
        payload.iter().all(|b| *b != b'\n'),
        "shellcode must survive line-based delivery"
    );
    let fd = respond_fn.wrapping_sub(12);
    let bk = sc_base;
    for addr in [fd, bk] {
        assert!(
            addr.to_le_bytes().iter().all(|b| !forbidden(*b)),
            "address bytes must survive"
        );
    }
    Exploit {
        app: "CVS",
        input: attack_stream(fd, bk, &payload),
        variant: "compromise (layout-dependent)",
    }
}

/// Shellcode variant for line-based delivery: avoids `r10` (whose
/// register number collides with the `\n` line terminator when encoded)
/// by writing the marker via the `log` syscall.
fn shellcode_log(payload_base: u32) -> Vec<u8> {
    use crate::common::PWNED_MARKER;
    use svm::isa::{Op, Reg, Syscall};
    let insns = 4;
    let marker_addr = payload_base + insns * 8;
    let mut code = Vec::new();
    code.extend_from_slice(
        &Op::MovI {
            rd: Reg::R0,
            imm: marker_addr,
        }
        .encode(),
    );
    code.extend_from_slice(
        &Op::MovI {
            rd: Reg::R1,
            imm: PWNED_MARKER.len() as u32,
        }
        .encode(),
    );
    code.extend_from_slice(
        &Op::Sys {
            num: Syscall::Log.num(),
        }
        .encode(),
    );
    code.extend_from_slice(
        &Op::Sys {
            num: Syscall::Exit.num(),
        }
        .encode(),
    );
    code.extend_from_slice(PWNED_MARKER);
    code
}

/// The deterministic-crash exploit: unlink operands point at addresses
/// unmapped under every layout, so the corrupted-list allocation always
/// faults (inside library `malloc`).
pub fn exploit_crash(_a: &App) -> Exploit {
    Exploit {
        app: "CVS",
        input: attack_stream(0x6666_6666, 0x6767_6767, b"/repo"),
        variant: "crash (layout-independent)",
    }
}

/// Polymorphic crash variant: different names/padding, same double free.
pub fn exploit_crash_poly(_a: &App, salt: u8) -> Exploit {
    let mut s = Vec::new();
    s.extend_from_slice(format!("Root /r{salt}\n").as_bytes());
    s.extend_from_slice(format!("Directory d{salt}{salt}\n").as_bytes());
    s.extend_from_slice(b"Directory /x\n");
    s.extend_from_slice(b"Directory ");
    s.extend_from_slice(&(0x6161_6161u32 + salt as u32).to_le_bytes());
    s.extend_from_slice(&(0x6262_6262u32).to_le_bytes());
    s.extend_from_slice(format!("p{salt}\n").as_bytes());
    s.extend_from_slice(b"Entry yy\n");
    s.extend_from_slice(b"done\n");
    Exploit {
        app: "CVS",
        input: s,
        variant: "crash (polymorphic)",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::is_compromised;
    use svm::loader::Aslr;
    use svm::{Fault, Machine, NopHook, Status};

    fn drive(m: &mut Machine) -> Status {
        m.run(&mut NopHook, 400_000_000)
    }

    #[test]
    fn benign_session_completes() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(2)).expect("boot");
        m.net.push_connection(benign_session(&["src", "doc"]));
        drive(&mut m);
        let out = m.net.conn(0).expect("c").output.clone();
        let text = String::from_utf8_lossy(&out);
        assert_eq!(
            text.matches("ok\n").count(),
            5,
            "Root + 2 dirs + 2 entries: {text}"
        );
        assert!(text.contains("session complete"));
        assert!(matches!(m.status(), Status::Blocked(_)), "server healthy");
    }

    #[test]
    fn double_free_is_performed_silently_on_benign_looking_stream() {
        // The double free alone (valid metadata) does not crash: this is
        // why lightweight detection needs the wild unlink to misfire.
        let a = app().expect("app");
        let mut m = a.boot(Aslr::off()).expect("boot");
        m.net
            .push_connection(b"Directory aa\nDirectory /bad\nDirectory bb\ndone\n".to_vec());
        drive(&mut m);
        assert!(matches!(m.status(), Status::Blocked(_)), "no crash");
    }

    #[test]
    fn compromise_succeeds_when_layout_guessed() {
        let a = app().expect("app");
        let layout = Layout::nominal();
        let mut m = a.boot_at(layout).expect("boot");
        let ex = exploit_compromise(&a, &layout);
        m.net.push_connection(ex.input);
        drive(&mut m);
        assert!(
            is_compromised(&m),
            "fn-pointer hijack via unlink ran shellcode"
        );
    }

    #[test]
    fn compromise_faults_under_aslr() {
        let a = app().expect("app");
        let ex = exploit_compromise(&a, &Layout::nominal());
        let mut m = a.boot(Aslr::on(0xbeef)).expect("boot");
        m.net.push_connection(ex.input);
        let s = drive(&mut m);
        assert!(matches!(s, Status::Faulted(_)), "{s:?}");
        assert!(!is_compromised(&m));
    }

    #[test]
    fn crash_exploit_faults_inside_library_malloc() {
        let a = app().expect("app");
        let mut m = a.boot(Aslr::on(3)).expect("boot");
        m.net.push_connection(exploit_crash(&a).input);
        let s = drive(&mut m);
        let Status::Faulted(f) = s else {
            panic!("{s:?}")
        };
        assert!(matches!(f, Fault::Unmapped { .. }), "{f:?}");
        assert_eq!(m.symbols.resolve(f.pc()).expect("sym").name, "malloc");
        // Heap walk shows an inconsistency-free boundary chain but the
        // chunk is both live and listed — the analyzer sees double-alloc.
    }

    #[test]
    fn poly_variants_all_crash() {
        let a = app().expect("app");
        for salt in [1u8, 5, 9] {
            let mut m = a.boot(Aslr::on(salt as u64 + 40)).expect("boot");
            m.net.push_connection(exploit_crash_poly(&a, salt).input);
            assert!(matches!(drive(&mut m), Status::Faulted(_)), "salt {salt}");
        }
    }
}
