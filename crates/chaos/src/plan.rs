//! Seeded fault plans: a deterministic [`FaultHooks`] implementation.
//!
//! Every injection decision is a pure function of
//! `(case seed, site domain, per-site counter)` through the counter-based
//! PRNG ([`epidemic::rng::draw`]) — the same keystone the sharded
//! community engine uses for its deterministic merge. Because no decision
//! depends on evolving generator *state*, a plan rebuilt from the same
//! seed fires the same faults at the same sites in a replayed run, which
//! is what makes `chaos --seed 0x…` an exact reproducer.
//!
//! A plan covers fourteen fault families, each independently enabled by
//! a seed-derived mask so seeds explore combinations (including the
//! empty plan, which anchors the bit-identical invariant). Eleven are
//! hook families firing through [`sweeper::FaultHooks`]; three (PR 5)
//! are *wire* families that configure the antibody distribution network
//! and the certified-bundle hand-off of the runner's distnet legs:
//!
//! | family | seam |
//! |--------|------|
//! | replay-drop | a re-injected connection vanishes mid-replay |
//! | replay-corrupt | a re-injected connection is bit-flipped |
//! | replay-reorder | the replay set is permuted |
//! | tool-fail | an analysis tool fails to attach (per step) |
//! | tool-detach | the DBI runtime dies after N delivered events |
//! | ckpt-evict | the chosen checkpoint is evicted pre-recovery |
//! | antibody-corrupt | the serialized antibody is damaged in transit |
//! | delta-trunc | the newest incremental delta loses its tail pages |
//! | dedupe-evict | the dedupe store drops a live page slot (PR 7) |
//! | domain-tag-corrupt | a page's domain attribution is flipped pre-recovery (PR 10) |
//! | domain-spill-force | every tracked domain is forced into the spilled set (PR 10) |
//! | wire-loss | distnet sends are dropped / duplicated / delayed |
//! | wire-byzantine | a producer fraction emits forged bundles |
//! | bundle-forge | a forged certified bundle is handed to a consumer |

use std::sync::{Arc, Mutex};

use checkpoint::{CheckpointManager, Proxy};
use epidemic::rng::draw;
use sweeper::FaultHooks;

// Domain separators (arbitrary, fixed): one per decision site so
// counters never alias across sites.
const DOM_INTENSITY: u64 = 0xc4a0_0001;
const DOM_FAMILIES: u64 = 0xc4a0_0002;
const DOM_REPLAY_DROP: u64 = 0xc4a0_0010;
const DOM_REPLAY_CORRUPT: u64 = 0xc4a0_0011;
const DOM_CORRUPT_POS: u64 = 0xc4a0_0012;
const DOM_REORDER: u64 = 0xc4a0_0013;
const DOM_REORDER_SWAP: u64 = 0xc4a0_0014;
const DOM_TOOL_FAIL: u64 = 0xc4a0_0020;
const DOM_DETACH: u64 = 0xc4a0_0021;
const DOM_DETACH_N: u64 = 0xc4a0_0022;
const DOM_EVICT: u64 = 0xc4a0_0030;
const DOM_AB_CORRUPT: u64 = 0xc4a0_0040;
const DOM_AB_MODE: u64 = 0xc4a0_0041;
const DOM_WIRE_DUP: u64 = 0xc4a0_0050;
const DOM_WIRE_DELAY: u64 = 0xc4a0_0051;
const DOM_WIRE_BYZ: u64 = 0xc4a0_0052;
const DOM_DELTA_TRUNC: u64 = 0xc4a0_0070;
const DOM_TRUNC_N: u64 = 0xc4a0_0071;
const DOM_DEDUPE_EVICT: u64 = 0xc4a0_0072;
const DOM_DOMAIN_TAG: u64 = 0xc4a0_0080;
const DOM_TAG_SEL: u64 = 0xc4a0_0081;
const DOM_DOMAIN_SPILL: u64 = 0xc4a0_0082;

/// Family bit indices in the seed-derived enable mask.
const FAM_REPLAY_DROP: u32 = 0;
const FAM_REPLAY_CORRUPT: u32 = 1;
const FAM_REORDER: u32 = 2;
const FAM_TOOL_FAIL: u32 = 3;
const FAM_DETACH: u32 = 4;
const FAM_EVICT: u32 = 5;
const FAM_AB_CORRUPT: u32 = 6;
const FAM_WIRE_LOSS: u32 = 7;
const FAM_WIRE_BYZANTINE: u32 = 8;
const FAM_BUNDLE_FORGE: u32 = 9;
const FAM_DELTA_TRUNC: u32 = 10;
const FAM_DEDUPE_EVICT: u32 = 11;
const FAM_DOMAIN_TAG: u32 = 12;
const FAM_DOMAIN_SPILL: u32 = 13;

/// Counts of faults a plan actually *fired* during a run, per family.
///
/// The runner copies these into the observability registry as
/// `chaos.fault.<family>` counters, which is how the harness proves each
/// family is genuinely exercised (not just configured).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Replayed connections dropped.
    pub replay_dropped: u64,
    /// Replayed connections bit-flipped.
    pub replay_corrupted: u64,
    /// Replay sets permuted.
    pub replay_reordered: u64,
    /// Analysis-tool attach failures injected.
    pub tools_failed: u64,
    /// Mid-replay DBI detaches armed.
    pub tools_detached: u64,
    /// Checkpoints evicted in the recovery race window.
    pub ckpts_evicted: u64,
    /// Antibody bundles corrupted in transit.
    pub antibodies_corrupted: u64,
    /// Incremental delta records truncated in the recovery window
    /// (materialization must fail closed, degrading to restart).
    pub deltas_truncated: u64,
    /// Live dedupe-store page slots force-evicted out from under the
    /// delta chain (the compaction race).
    pub store_evictions: u64,
    /// Domain-ledger page tags corrupted in the recovery window (PR 10).
    /// The partial rollback must detect the mis-attribution through the
    /// ledger checksum and fail closed to full recovery — a corrupt tag
    /// never yields a wrong partial image.
    pub domain_tags_corrupted: u64,
    /// Cross-domain spills forced into the ledger in the recovery window
    /// (PR 10): every attacked domain then refuses partial rollback and
    /// the runtime falls back to full recovery.
    pub domain_spills_forced: u64,
    /// Distnet wire faults observed (sends dropped + duplicated +
    /// delayed) on the faulted distribution leg.
    pub wire_faults: u64,
    /// Forged bundles from Byzantine producers rejected at the
    /// verify-before-deploy gate on the faulted distribution leg.
    pub byzantine_rejections: u64,
    /// Forged certified bundles injected into the producer→consumer
    /// hand-off leg (each must be rejected; a deployment is an I8
    /// violation).
    pub bundles_forged: u64,
}

impl FaultStats {
    /// Total faults fired across all families.
    pub fn total(&self) -> u64 {
        self.hook_total() + self.wire_faults + self.byzantine_rejections + self.bundles_forged
    }

    /// Total *hook* faults fired (the eleven [`sweeper::FaultHooks`]
    /// families). This — not [`FaultStats::total`] — governs invariant
    /// I7: wire faults perturb only the distnet legs, never the faulted
    /// sweeper run, so they must not relax the bit-identity check.
    pub fn hook_total(&self) -> u64 {
        self.replay_dropped
            + self.replay_corrupted
            + self.replay_reordered
            + self.tools_failed
            + self.tools_detached
            + self.ckpts_evicted
            + self.antibodies_corrupted
            + self.deltas_truncated
            + self.store_evictions
            + self.domain_tags_corrupted
            + self.domain_spills_forced
    }

    /// Total replay-perturbing faults fired (drop / corrupt / reorder).
    /// These are the only families that touch the *full* recovery
    /// replay, so they are the only ones allowed to relax the
    /// Domain-vs-Full recovery parity comparison (the partial rollback
    /// replays nothing and cannot see them).
    pub fn replay_total(&self) -> u64 {
        self.replay_dropped + self.replay_corrupted + self.replay_reordered
    }

    /// Number of distinct families that fired at least once.
    pub fn families_fired(&self) -> usize {
        [
            self.replay_dropped,
            self.replay_corrupted,
            self.replay_reordered,
            self.tools_failed,
            self.tools_detached,
            self.ckpts_evicted,
            self.antibodies_corrupted,
            self.deltas_truncated,
            self.store_evictions,
            self.domain_tags_corrupted,
            self.domain_spills_forced,
            self.wire_faults,
            self.byzantine_rejections,
            self.bundles_forged,
        ]
        .iter()
        .filter(|&&n| n > 0)
        .count()
    }

    /// Accumulate another run's stats into this one.
    pub fn absorb(&mut self, other: &FaultStats) {
        self.replay_dropped += other.replay_dropped;
        self.replay_corrupted += other.replay_corrupted;
        self.replay_reordered += other.replay_reordered;
        self.tools_failed += other.tools_failed;
        self.tools_detached += other.tools_detached;
        self.ckpts_evicted += other.ckpts_evicted;
        self.antibodies_corrupted += other.antibodies_corrupted;
        self.deltas_truncated += other.deltas_truncated;
        self.store_evictions += other.store_evictions;
        self.domain_tags_corrupted += other.domain_tags_corrupted;
        self.domain_spills_forced += other.domain_spills_forced;
        self.wire_faults += other.wire_faults;
        self.byzantine_rejections += other.byzantine_rejections;
        self.bundles_forged += other.bundles_forged;
    }

    /// Write the per-family fired counts into `reg` as
    /// `chaos.fault.<family>` absolute counters.
    pub fn export(&self, reg: &mut obs::MetricsRegistry) {
        reg.set_counter("chaos.fault.replay_dropped", self.replay_dropped);
        reg.set_counter("chaos.fault.replay_corrupted", self.replay_corrupted);
        reg.set_counter("chaos.fault.replay_reordered", self.replay_reordered);
        reg.set_counter("chaos.fault.tools_failed", self.tools_failed);
        reg.set_counter("chaos.fault.tools_detached", self.tools_detached);
        reg.set_counter("chaos.fault.ckpts_evicted", self.ckpts_evicted);
        reg.set_counter(
            "chaos.fault.antibodies_corrupted",
            self.antibodies_corrupted,
        );
        reg.set_counter("chaos.fault.deltas_truncated", self.deltas_truncated);
        reg.set_counter("chaos.fault.store_evictions", self.store_evictions);
        reg.set_counter(
            "chaos.fault.domain_tags_corrupted",
            self.domain_tags_corrupted,
        );
        reg.set_counter(
            "chaos.fault.domain_spills_forced",
            self.domain_spills_forced,
        );
        reg.set_counter("chaos.fault.wire_faults", self.wire_faults);
        reg.set_counter(
            "chaos.fault.byzantine_rejections",
            self.byzantine_rejections,
        );
        reg.set_counter("chaos.fault.bundles_forged", self.bundles_forged);
    }

    /// `(name, count)` pairs in a fixed order, for reports.
    pub fn named(&self) -> [(&'static str, u64); 14] {
        [
            ("replay_dropped", self.replay_dropped),
            ("replay_corrupted", self.replay_corrupted),
            ("replay_reordered", self.replay_reordered),
            ("tools_failed", self.tools_failed),
            ("tools_detached", self.tools_detached),
            ("ckpts_evicted", self.ckpts_evicted),
            ("antibodies_corrupted", self.antibodies_corrupted),
            ("deltas_truncated", self.deltas_truncated),
            ("store_evictions", self.store_evictions),
            ("domain_tags_corrupted", self.domain_tags_corrupted),
            ("domain_spills_forced", self.domain_spills_forced),
            ("wire_faults", self.wire_faults),
            ("byzantine_rejections", self.byzantine_rejections),
            ("bundles_forged", self.bundles_forged),
        ]
    }
}

/// Shared handle to a plan's [`FaultStats`]: the plan is boxed into the
/// runtime (`Box<dyn FaultHooks>`), so the runner keeps this clone to
/// read the fired counts after the run — including after a caught panic.
pub type SharedStats = Arc<Mutex<FaultStats>>;

/// Wire-level fault configuration for the runner's distribution-network
/// legs, derived from the same `(seed, intensity, family-mask)` triple
/// as the hook families. Unlike hooks, wire faults are expressed as
/// [`epidemic::DistNetParams`] knobs: the distnet draws its own
/// per-send loss/dup/delay/forgery decisions from the *community* seed,
/// so the whole leg stays a pure function of the case seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WirePlan {
    /// Per-send loss probability for the faulted distnet leg.
    pub loss: f64,
    /// Per-send duplication probability.
    pub dup: f64,
    /// Maximum extra delivery delay in ticks.
    pub max_delay_ticks: u64,
    /// Byzantine producer fraction (≥ 0.10 whenever enabled, so smoke
    /// batches genuinely exercise forged-bundle rejection).
    pub byzantine: f64,
    /// Whether the forged certified-bundle hand-off leg runs.
    pub forge_bundles: bool,
}

impl WirePlan {
    /// Whether any distnet-level wire fault is configured.
    pub fn any_wire_fault(&self) -> bool {
        self.loss > 0.0 || self.byzantine > 0.0
    }
}

/// A seeded, deterministic fault plan (see module docs).
pub struct FaultPlan {
    seed: u64,
    /// Per-site fire probability in permille; 0 means the empty plan.
    permille: u64,
    /// Enabled-family bitmask (bits [`FAM_REPLAY_DROP`]..).
    families: u64,
    /// Per-domain decision counters (indexed by site, not family).
    counters: [u64; 11],
    stats: SharedStats,
}

impl FaultPlan {
    /// Derive a plan from a case seed. Roughly a quarter of seeds yield
    /// the *empty* plan (intensity 0): those anchor the invariant that an
    /// installed-but-silent plan is bit-identical to no plan at all.
    pub fn from_seed(seed: u64) -> (FaultPlan, SharedStats) {
        let permille = match draw(seed, DOM_INTENSITY, 0) % 4 {
            0 => 0,
            1 => 80,
            2 => 220,
            _ => 450,
        };
        let families = draw(seed, DOM_FAMILIES, 0) | (1 << FAM_TOOL_FAIL);
        let stats: SharedStats = Arc::new(Mutex::new(FaultStats::default()));
        (
            FaultPlan {
                seed,
                permille,
                families,
                counters: [0; 11],
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// Whether this plan can fire at all.
    pub fn is_empty_plan(&self) -> bool {
        self.permille == 0
    }

    /// The wire-fault configuration for this plan's distnet legs (PR 5
    /// families, bits [`FAM_WIRE_LOSS`]..[`FAM_BUNDLE_FORGE`]). The
    /// empty plan yields a zero-fault wire, anchoring the differential
    /// invariant: an ideal wire is bit-identical to the legacy clock.
    pub fn wire(&self) -> WirePlan {
        let on = |fam: u32| self.permille > 0 && self.families & (1u64 << fam) != 0;
        let intensity = self.permille as f64 / 1000.0;
        let (loss, dup, max_delay_ticks) = if on(FAM_WIRE_LOSS) {
            (
                0.10 + 0.60 * intensity,
                (draw(self.seed, DOM_WIRE_DUP, 0) % 80) as f64 / 1000.0,
                draw(self.seed, DOM_WIRE_DELAY, 0) % 3,
            )
        } else {
            (0.0, 0.0, 0)
        };
        let byzantine = if on(FAM_WIRE_BYZANTINE) {
            0.10 + (draw(self.seed, DOM_WIRE_BYZ, 0) % 4) as f64 * 0.10
        } else {
            0.0
        };
        WirePlan {
            loss,
            dup,
            max_delay_ticks,
            byzantine,
            forge_bundles: on(FAM_BUNDLE_FORGE),
        }
    }

    /// One deterministic permille roll at `domain` (counter slot `slot`),
    /// gated on the family being enabled.
    fn roll(&mut self, family: u32, domain: u64, slot: usize) -> bool {
        if self.permille == 0 || self.families & (1 << family) == 0 {
            return false;
        }
        let c = self.counters[slot];
        self.counters[slot] += 1;
        draw(self.seed, domain, c) % 1000 < self.permille
    }

    /// A deterministic raw draw at `domain`, advancing slot `slot`.
    fn value(&mut self, domain: u64, slot: usize) -> u64 {
        let c = self.counters[slot];
        self.counters[slot] += 1;
        draw(self.seed, domain, c)
    }

    /// Fold a step name into a domain so per-step decisions don't alias.
    fn step_domain(base: u64, step: &str) -> u64 {
        step.bytes()
            .fold(base, |acc, b| acc.rotate_left(7) ^ u64::from(b))
    }
}

impl FaultHooks for FaultPlan {
    fn on_replay_input(&mut self, _log_id: usize, input: &mut Vec<u8>) -> bool {
        if self.roll(FAM_REPLAY_DROP, DOM_REPLAY_DROP, 0) {
            self.stats.lock().unwrap().replay_dropped += 1;
            return false;
        }
        if !input.is_empty() && self.roll(FAM_REPLAY_CORRUPT, DOM_REPLAY_CORRUPT, 1) {
            let v = self.value(DOM_CORRUPT_POS, 1);
            let pos = (v as usize) % input.len();
            let bit = (v >> 32) % 8;
            input[pos] ^= 1 << bit;
            self.stats.lock().unwrap().replay_corrupted += 1;
        }
        true
    }

    fn reorder_replay(&mut self, inputs: &mut Vec<(usize, Vec<u8>)>) {
        if inputs.len() < 2 || !self.roll(FAM_REORDER, DOM_REORDER, 2) {
            return;
        }
        // Deterministic Fisher–Yates over the replay set.
        for i in (1..inputs.len()).rev() {
            let j = (self.value(DOM_REORDER_SWAP, 2) as usize) % (i + 1);
            inputs.swap(i, j);
        }
        self.stats.lock().unwrap().replay_reordered += 1;
    }

    fn fail_tool(&mut self, step: &'static str) -> bool {
        let dom = FaultPlan::step_domain(DOM_TOOL_FAIL, step);
        if self.roll(FAM_TOOL_FAIL, dom, 3) {
            self.stats.lock().unwrap().tools_failed += 1;
            return true;
        }
        false
    }

    fn tool_detach_after(&mut self, step: &'static str) -> Option<u64> {
        let dom = FaultPlan::step_domain(DOM_DETACH, step);
        if self.roll(FAM_DETACH, dom, 4) {
            let n = self.value(DOM_DETACH_N, 4) % 4096;
            self.stats.lock().unwrap().tools_detached += 1;
            return Some(n);
        }
        None
    }

    fn before_recovery(&mut self, mgr: &mut CheckpointManager, _proxy: &mut Proxy) {
        // The eviction race: retention pressure lands between choosing a
        // snapshot and replaying from it. Up to three evictions per
        // window so a seed can vanish the chosen checkpoint entirely.
        for _ in 0..3 {
            if !self.roll(FAM_EVICT, DOM_EVICT, 5) {
                break;
            }
            if mgr.evict_oldest().is_none() {
                break;
            }
            self.stats.lock().unwrap().ckpts_evicted += 1;
        }
        // Delta-chain truncation (PR 7): the newest incremental record
        // loses its tail pages in the same window. Materialization must
        // fail closed — a restart, never a wrong image. Fires only when
        // the engine actually holds a delta (Full snapshots are immune),
        // so the roll is counted only if pages were really dropped.
        if self.roll(FAM_DELTA_TRUNC, DOM_DELTA_TRUNC, 7) {
            let n = 1 + (self.value(DOM_TRUNC_N, 7) % 4) as usize;
            if mgr.chaos_truncate_latest_delta(n) > 0 {
                self.stats.lock().unwrap().deltas_truncated += 1;
            }
        }
        // Dedupe-store eviction race (PR 7): compaction pressure drops a
        // live page slot out from under every delta that references it.
        if self.roll(FAM_DEDUPE_EVICT, DOM_DEDUPE_EVICT, 8) && mgr.chaos_evict_store_page() {
            self.stats.lock().unwrap().store_evictions += 1;
        }
        // Domain-tag corruption (PR 10): one tracked page's domain
        // attribution is flipped without re-sealing the ledger checksum.
        // Partial recovery must detect the mis-attribution (a corrupt
        // ledger never verifies) and fail closed to full recovery. Lands
        // only when the ledger actually tracks pages.
        if self.roll(FAM_DOMAIN_TAG, DOM_DOMAIN_TAG, 9) {
            let sel = self.value(DOM_TAG_SEL, 9);
            if mgr.chaos_corrupt_domain_tag(sel) {
                self.stats.lock().unwrap().domain_tags_corrupted += 1;
            }
        }
        // Forced cross-domain spill (PR 10): every tracked domain is
        // marked spilled, modelling uncovered cross-domain writes. Every
        // attacked domain must then refuse partial rollback and fall
        // back to full recovery — never a wrong partial image.
        if self.roll(FAM_DOMAIN_SPILL, DOM_DOMAIN_SPILL, 10) && mgr.chaos_force_domain_spill() {
            self.stats.lock().unwrap().domain_spills_forced += 1;
        }
    }

    fn corrupt_antibody(&mut self, bytes: &mut Vec<u8>) -> bool {
        if bytes.is_empty() || !self.roll(FAM_AB_CORRUPT, DOM_AB_CORRUPT, 6) {
            return false;
        }
        let v = self.value(DOM_AB_MODE, 6);
        match v % 3 {
            // Truncation (lost tail in transit).
            0 => {
                let keep = (v >> 8) as usize % bytes.len();
                bytes.truncate(keep);
            }
            // Single bit-flip.
            1 => {
                let pos = (v >> 8) as usize % bytes.len();
                let bit = (v >> 56) % 8;
                bytes[pos] ^= 1 << bit;
            }
            // Burst corruption: stomp 4 bytes.
            _ => {
                let pos = (v >> 8) as usize % bytes.len();
                for (k, b) in bytes.iter_mut().skip(pos).take(4).enumerate() {
                    *b = (v >> (16 + 8 * k)) as u8;
                }
            }
        }
        self.stats.lock().unwrap().antibodies_corrupted += 1;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal machine so the eviction seam has real checkpoints to
    /// race against.
    fn boot_counter() -> svm::Machine {
        let prog = svm::asm::assemble(
            ".text\nmain:\n movi r1, v\nloop:\n ld r0, [r1, 0]\n addi r0, r0, 1\n st [r1, 0], r0\n jmp loop\n.data\nv: .word 0\n",
        )
        .expect("asm");
        svm::Machine::boot(&prog, svm::loader::Aslr::off()).expect("boot")
    }

    /// Drive a plan through a fixed synthetic site schedule, recording
    /// every decision.
    fn trace(seed: u64) -> (Vec<String>, FaultStats) {
        let (mut p, stats) = FaultPlan::from_seed(seed);
        let mut m = boot_counter();
        let mut mgr = CheckpointManager::new(0, 4);
        let mut proxy = Proxy::new();
        let mut out = Vec::new();
        for i in 0..24u64 {
            let mut input = vec![1, 2, 3, 4, (i & 0xff) as u8];
            let kept = p.on_replay_input(i as usize, &mut input);
            out.push(format!("replay {kept} {input:?}"));
            let mut set = vec![(0usize, vec![9u8]), (1, vec![8]), (2, vec![7])];
            p.reorder_replay(&mut set);
            out.push(format!("order {set:?}"));
            for step in ["memory-state", "memory-bug", "taint", "slicing"] {
                out.push(format!("fail {} {}", step, p.fail_tool(step)));
                out.push(format!("detach {} {:?}", step, p.tool_detach_after(step)));
            }
            let mut ab = vec![0xabu8; 40];
            out.push(format!("ab {} {ab:?}", p.corrupt_antibody(&mut ab)));
            // Keep the ring populated so evictions can actually land.
            while mgr.retained() < 3 {
                mgr.take(&mut m);
            }
            // Keep the domain ledger populated (run the guest, attribute
            // the dirtied pages) so the tag-corruption and forced-spill
            // seams can actually land.
            m.run(&mut svm::NopHook, 200);
            mgr.note_service(&m, (i % 3) as u32);
            p.before_recovery(&mut mgr, &mut proxy);
            out.push(format!("retained {}", mgr.retained()));
        }
        let s = *stats.lock().unwrap();
        (out, s)
    }

    #[test]
    fn same_seed_same_plan_bit_for_bit() {
        for seed in [0u64, 1, 42, 0xdead_beef, u64::MAX] {
            assert_eq!(trace(seed), trace(seed), "seed {seed:#x}");
        }
    }

    #[test]
    fn seeds_explore_distinct_fault_mixes() {
        let mut distinct = std::collections::BTreeSet::new();
        let mut empty_plans = 0;
        for seed in 0..64u64 {
            let (_, stats) = trace(seed);
            if stats.total() == 0 {
                empty_plans += 1;
            }
            distinct.insert(format!("{stats:?}"));
        }
        assert!(distinct.len() > 8, "only {} mixes", distinct.len());
        assert!(empty_plans > 0, "some seeds must yield the empty plan");
        // Across a small seed range, every family fires somewhere.
        let mut agg = FaultStats::default();
        for seed in 0..64u64 {
            agg.absorb(&trace(seed).1);
        }
        // `trace` drives only the hook seams; all 11 hook families fire.
        assert_eq!(
            agg.families_fired(),
            11,
            "all hook families reachable: {agg:?}"
        );
    }

    #[test]
    fn wire_plans_are_deterministic_and_explore_the_space() {
        let (mut lossy, mut byz, mut forge, mut quiet) = (0, 0, 0, 0);
        for seed in 0..256u64 {
            let (p, _) = FaultPlan::from_seed(seed);
            let w = p.wire();
            assert_eq!(w, FaultPlan::from_seed(seed).0.wire(), "seed {seed}");
            if p.is_empty_plan() {
                assert_eq!(
                    w,
                    WirePlan {
                        loss: 0.0,
                        dup: 0.0,
                        max_delay_ticks: 0,
                        byzantine: 0.0,
                        forge_bundles: false
                    },
                    "empty plan must yield a perfect wire"
                );
            }
            if w.loss > 0.0 {
                lossy += 1;
                assert!((0.1..0.9).contains(&w.loss), "loss bounded: {}", w.loss);
            }
            if w.byzantine > 0.0 {
                byz += 1;
                assert!(
                    (0.10..=0.40).contains(&w.byzantine),
                    "byzantine fraction >= 10%: {}",
                    w.byzantine
                );
            }
            if w.forge_bundles {
                forge += 1;
            }
            if !w.any_wire_fault() && !w.forge_bundles {
                quiet += 1;
            }
        }
        assert!(lossy > 10, "lossy wires: {lossy}");
        assert!(byz > 10, "byzantine wires: {byz}");
        assert!(forge > 10, "forge legs: {forge}");
        assert!(quiet > 10, "quiet wires anchor the differential: {quiet}");
    }

    #[test]
    fn empty_plan_never_fires() {
        for seed in 0..512u64 {
            let (p, _) = FaultPlan::from_seed(seed);
            if p.is_empty_plan() {
                let (_, stats) = trace(seed);
                assert_eq!(stats.total(), 0, "empty plan fired: seed {seed}");
                return;
            }
        }
        panic!("no empty plan in seed range");
    }

    #[test]
    fn stats_export_lands_in_the_registry() {
        let mut agg = FaultStats::default();
        for seed in 0..32u64 {
            agg.absorb(&trace(seed).1);
        }
        let mut reg = obs::MetricsRegistry::new();
        agg.export(&mut reg);
        assert_eq!(reg.counter("chaos.fault.tools_failed"), agg.tools_failed);
        assert_eq!(
            reg.counter("chaos.fault.replay_dropped"),
            agg.replay_dropped
        );
    }
}
