//! The invariant catalog checked after every faulted run.
//!
//! The contract: under *any* injected fault the pipeline **degrades**
//! — weaker antibody, explicit [`sweeper::SweeperError`] surfaced on the
//! timeline, a restart instead of a rollback — and never breaks. Each
//! invariant below is a machine-checkable fragment of that sentence;
//! `TESTING.md` carries the operator-facing catalog.
//!
//! | id | invariant |
//! |----|-----------|
//! | I1 | no panic escapes the runtime (enforced by the runner's `catch_unwind`) |
//! | I2 | request accounting: offered = served + filtered + attacks |
//! | I3 | recovery accounting: attacks = restarts + rollback-replays |
//! | I4 | detection ⇒ antibody, or an explicit degradation on the record |
//! | I5 | the host is serviceable after the last request (recovery always restores service) |
//! | I6 | proxy log grows exactly once per offered request |
//! | I7 | a plan that fired nothing is bit-identical to the unfaulted run |
//! | I8 | no consumer ever deploys an unverified antibody bundle |
//! | I9 | incremental/full checkpoint parity never diverges (`checkpoint.parity_mismatches` = 0, unconditionally — damaged chains fail *closed*, they never resurrect a wrong image) |
//! | I10 | the fleet reactor's outcome digest is shard-count-invariant (sharding is a layout knob, never a semantics knob) |
//! | I11 | the SoA community engine is bit-identical to the legacy dense oracle (`epidemic.soa_parity_mismatches` = 0, unconditionally — no fired fault relaxes it) |
//! | I12 | a partial (domain) rollback never disturbs benign domains: benign connections in untouched domains are neither dropped nor replayed (`recovery.i12_violations` = 0, unconditionally — fired faults force the fail-closed path to Full, they never license a benign disturbance) |

use crate::plan::FaultStats;

/// One violated invariant, with enough detail to triage from the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Invariant id (`I1`..`I7`).
    pub invariant: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl Violation {
    fn new(invariant: &'static str, detail: String) -> Violation {
        Violation { invariant, detail }
    }
}

/// Everything the runner observed about one faulted run, flattened so
/// the checker needs no live borrows of the (possibly poisoned) host.
#[derive(Debug, Clone)]
pub struct FaultedRun {
    /// Requests offered to the host.
    pub offered: u64,
    /// `RequestOutcome::Served` count.
    pub served: u64,
    /// `RequestOutcome::Filtered` count.
    pub filtered: u64,
    /// `RequestOutcome::Attack` count.
    pub attacks: u64,
    /// `recovery.restarts` counter.
    pub restarts: u64,
    /// `recovery.rollback_replays` counter.
    pub rollback_replays: u64,
    /// `proxy.conns_logged` counter.
    pub conns_logged: u64,
    /// `proxy.filtered_total` counter.
    pub proxy_filtered: u64,
    /// `pipeline.tool_failures` counter.
    pub tool_failures: u64,
    /// `sweeper.antibody_corrupt_total` counter.
    pub antibody_corrupt: u64,
    /// `checkpoint.parity_mismatches` counter: materialized incremental
    /// images that diverged from the full-copy oracle (I9; must be 0).
    pub parity_mismatches: u64,
    /// `recovery.i12_violations` counter: partial rollbacks that dropped
    /// or replayed a connection in an untouched benign domain (I12; must
    /// be 0 unconditionally).
    pub i12_violations: u64,
    /// `recovery.domain_parity_mismatches` counter: differential
    /// recoveries where the Domain shadow and the Full live machine
    /// disagreed on the post-recovery digest. Must be 0 unless a
    /// replay-family fault perturbed the Full leg's replay (the partial
    /// rollback replays nothing, so only those faults can legitimately
    /// split the pair).
    pub domain_parity_mismatches: u64,
    /// Deployed VSEF count at the end of the run.
    pub deployed_vsefs: u64,
    /// Deployed signature count at the end of the run.
    pub deployed_signatures: u64,
    /// Whether the host reported itself serviceable at the end.
    pub healthy: bool,
    /// Whether the host is a producer (consumers never build antibodies,
    /// so I4 does not apply to them).
    pub producer: bool,
    /// Outcome digest of the faulted run.
    pub digest: u64,
}

/// Check the invariant catalog over one faulted run.
///
/// `baseline_digest` is the unfaulted run's digest (for I7);
/// `stats` is what the fault plan actually fired.
pub fn check_faulted_run(
    run: &FaultedRun,
    stats: &FaultStats,
    baseline_digest: u64,
) -> Vec<Violation> {
    let mut v = Vec::new();

    // I2: every offered request has exactly one outcome.
    if run.offered != run.served + run.filtered + run.attacks {
        v.push(Violation::new(
            "I2",
            format!(
                "offered {} != served {} + filtered {} + attacks {}",
                run.offered, run.served, run.filtered, run.attacks
            ),
        ));
    }

    // I3: every detected attack ends in exactly one recovery.
    if run.attacks != run.restarts + run.rollback_replays {
        v.push(Violation::new(
            "I3",
            format!(
                "attacks {} != restarts {} + rollback_replays {}",
                run.attacks, run.restarts, run.rollback_replays
            ),
        ));
    }

    // I4: detection ⇒ an antibody was deployed, or the degradation is
    // explicit (an injected tool failure or a rejected corrupt bundle —
    // both surfaced as counters + timeline events by the runtime).
    if run.producer
        && run.attacks > 0
        && run.deployed_vsefs == 0
        && run.deployed_signatures == 0
        && run.tool_failures == 0
        && run.antibody_corrupt == 0
    {
        v.push(Violation::new(
            "I4",
            format!(
                "{} attacks but no antibody and no recorded degradation",
                run.attacks
            ),
        ));
    }

    // I5: service is always restored (rollback-replay or restart).
    if !run.healthy {
        v.push(Violation::new(
            "I5",
            "host not serviceable after the final request".to_string(),
        ));
    }

    // I6: the proxy logs exactly one connection per offered request
    // (replays re-inject into the guest, never into the log), and its
    // filter counter agrees with the filtered outcomes.
    if run.conns_logged != run.offered {
        v.push(Violation::new(
            "I6",
            format!(
                "proxy logged {} of {} offered",
                run.conns_logged, run.offered
            ),
        ));
    }
    if run.proxy_filtered != run.filtered {
        v.push(Violation::new(
            "I6",
            format!(
                "proxy filtered_total {} != filtered outcomes {}",
                run.proxy_filtered, run.filtered
            ),
        ));
    }

    // I9: the incremental engine is bit-identical to the full-copy
    // oracle, under every fault plan. Damage (truncated deltas, evicted
    // store slots) must fail *closed* — a materialize failure degrading
    // to restart — never materialize-but-diverge. Unconditional: no
    // fired fault relaxes it.
    if run.parity_mismatches > 0 {
        v.push(Violation::new(
            "I9",
            format!(
                "{} checkpoint parity mismatch(es) between incremental and full engines",
                run.parity_mismatches
            ),
        ));
    }

    // I12: a partial rollback never disturbs benign domains.
    // Unconditional: every fired fault (corrupt tag, forced spill,
    // evicted checkpoint, truncated delta) forces the fail-closed path
    // to full recovery — none of them licenses a benign disturbance.
    if let Some(viol) = check_i12(run.i12_violations, "faulted sweeper run") {
        v.push(viol);
    }

    // The differential recovery oracle: when Domain (shadow) and Full
    // (live) both complete for the same fault, their post-recovery
    // digests must be bit-equal. Only the replay families can
    // legitimately split the pair — they perturb the Full leg's replay,
    // which the partial rollback does not have.
    if stats.replay_total() == 0 && run.domain_parity_mismatches > 0 {
        v.push(Violation::new(
            "differential",
            format!(
                "{} Domain/Full recovery parity mismatch(es) with no replay fault fired",
                run.domain_parity_mismatches
            ),
        ));
    }

    // I7: an installed plan whose *hook* families fired nothing must not
    // perturb the run. (Wire families touch only the distnet legs, never
    // this sweeper run, so they do not relax the bit-identity.)
    if stats.hook_total() == 0 && run.digest != baseline_digest {
        v.push(Violation::new(
            "I7",
            format!(
                "no fault fired but digest {:#018x} != baseline {:#018x}",
                run.digest, baseline_digest
            ),
        ));
    }

    v
}

/// I8: no consumer ever deploys an unverified antibody bundle.
///
/// `deployed_unverified` is the distribution network's structural
/// counter (it increments only when a Byzantine producer's forged
/// bundle *passes* verification) or, for the bundle hand-off leg, the
/// consumer's deployed-VSEF count after a forged bundle. Both must be
/// zero under every fault plan — this is the verify-before-deploy
/// contract the whole PR-5 wire rests on.
pub fn check_i8(deployed_unverified: u64, ctx: &str) -> Option<Violation> {
    (deployed_unverified > 0).then(|| {
        Violation::new(
            "I8",
            format!("{ctx}: {deployed_unverified} unverified deployment(s)"),
        )
    })
}

/// I10: the fleet reactor's outcome digest is shard-count-invariant.
///
/// The reactor orders events by `(stamp, tie, host, seq)` where the tie
/// is a pure function of event identity; re-partitioning hosts across
/// shards can therefore never change the pop sequence, so the whole
/// fleet outcome — every service completion, every contact, every
/// per-host counter — must hash identically at 1 and N shards.
pub fn check_i10(serial: u64, sharded: u64, ctx: &str) -> Option<Violation> {
    (serial != sharded).then(|| {
        Violation::new(
            "I10",
            format!("{ctx}: shards=1 digest {serial:#018x} != sharded digest {sharded:#018x}"),
        )
    })
}

/// I11: the SoA community engine is bit-identical to the legacy dense
/// oracle.
///
/// Every community leg runs `CommunityEngine::Differential` — the
/// legacy `Vec<bool>` scan and the bitset/active-queue backend in
/// lockstep over the same draws — and `mismatches` is the field-by-
/// field outcome comparison (`epidemic.soa_parity_mismatches`). It must
/// be zero under every fault plan and every knob combination; like I9,
/// no fired fault ever relaxes it, because the two backends consume the
/// identical RNG stream by construction.
pub fn check_i11(mismatches: u64, ctx: &str) -> Option<Violation> {
    (mismatches > 0).then(|| {
        Violation::new(
            "I11",
            format!("{ctx}: {mismatches} SoA/legacy engine parity mismatch(es)"),
        )
    })
}

/// I12: a partial (domain) rollback never disturbs benign domains.
///
/// `violations` is the runtime's structural counter
/// (`recovery.i12_violations`): it increments whenever a Domain recovery
/// resume dropped or replayed a connection belonging to a domain outside
/// the attacked set, per-domain accounting straight from the resume
/// report. It must be zero under every fault plan and every recovery
/// mode — fired faults make the runtime *refuse* partial rollback
/// (fail-closed to Full), they never relax this check.
pub fn check_i12(violations: u64, ctx: &str) -> Option<Violation> {
    (violations > 0).then(|| {
        Violation::new(
            "I12",
            format!("{ctx}: {violations} benign-domain disturbance(s) by partial rollback"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_run() -> FaultedRun {
        FaultedRun {
            offered: 10,
            served: 7,
            filtered: 1,
            attacks: 2,
            restarts: 1,
            rollback_replays: 1,
            conns_logged: 10,
            proxy_filtered: 1,
            tool_failures: 0,
            antibody_corrupt: 0,
            parity_mismatches: 0,
            i12_violations: 0,
            domain_parity_mismatches: 0,
            deployed_vsefs: 2,
            deployed_signatures: 1,
            healthy: true,
            producer: true,
            digest: 0x1234,
        }
    }

    #[test]
    fn clean_run_passes() {
        let v = check_faulted_run(&clean_run(), &FaultStats::default(), 0x1234);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn each_identity_is_enforced() {
        let stats = FaultStats::default();
        let mut r = clean_run();
        r.served = 6;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I2");
        let mut r = clean_run();
        r.restarts = 0;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I3");
        let mut r = clean_run();
        r.deployed_vsefs = 0;
        r.deployed_signatures = 0;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I4");
        let mut r = clean_run();
        r.healthy = false;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I5");
        let mut r = clean_run();
        r.conns_logged = 9;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I6");
        let r = clean_run();
        assert_eq!(check_faulted_run(&r, &stats, 0x9999)[0].invariant, "I7");
        let mut r = clean_run();
        r.parity_mismatches = 1;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I9");
        let mut r = clean_run();
        r.i12_violations = 1;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I12");
        let mut r = clean_run();
        r.domain_parity_mismatches = 1;
        assert_eq!(
            check_faulted_run(&r, &stats, 0x1234)[0].invariant,
            "differential"
        );
    }

    #[test]
    fn i12_is_not_relaxed_by_fired_faults() {
        // Even a plan that corrupted domain tags and forced spills must
        // see zero benign-domain disturbances: the runtime fails closed
        // to full recovery, it never runs a partial rollback that
        // touches benign domains.
        let stats = FaultStats {
            domain_tags_corrupted: 2,
            domain_spills_forced: 1,
            ..FaultStats::default()
        };
        let mut r = clean_run();
        r.digest = 0xdead; // I7 relaxed by the fired hooks…
        r.i12_violations = 1; // …but I12 still fires.
        let v = check_faulted_run(&r, &stats, 0x1234);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "I12");
    }

    #[test]
    fn replay_faults_relax_domain_parity_but_not_i12() {
        // A corrupted replay legitimately splits the Domain/Full digest
        // pair (only the Full leg replays), so the parity comparison is
        // relaxed — but a benign-domain disturbance is still I12.
        let stats = FaultStats {
            replay_corrupted: 1,
            ..FaultStats::default()
        };
        let mut r = clean_run();
        r.digest = 0xdead;
        r.domain_parity_mismatches = 1;
        assert!(check_faulted_run(&r, &stats, 0x1234).is_empty());
        r.i12_violations = 1;
        let v = check_faulted_run(&r, &stats, 0x1234);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "I12");
    }

    #[test]
    fn i9_is_not_relaxed_by_fired_faults() {
        // Even a plan that truncated deltas and evicted store slots must
        // see zero parity mismatches: damage fails closed, it never
        // materializes a divergent image.
        let stats = FaultStats {
            deltas_truncated: 2,
            store_evictions: 1,
            ..FaultStats::default()
        };
        let mut r = clean_run();
        r.digest = 0xdead; // I7 relaxed by the fired hooks…
        r.parity_mismatches = 1; // …but I9 still fires.
        let v = check_faulted_run(&r, &stats, 0x1234);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].invariant, "I9");
    }

    #[test]
    fn explicit_degradation_satisfies_i4() {
        let mut r = clean_run();
        r.deployed_vsefs = 0;
        r.deployed_signatures = 0;
        r.tool_failures = 2;
        assert!(check_faulted_run(&r, &FaultStats::default(), 0x1234).is_empty());
        r.tool_failures = 0;
        r.antibody_corrupt = 1;
        assert!(check_faulted_run(&r, &FaultStats::default(), 0x1234).is_empty());
    }

    #[test]
    fn consumers_are_exempt_from_i4() {
        let mut r = clean_run();
        r.producer = false;
        r.deployed_vsefs = 0;
        r.deployed_signatures = 0;
        assert!(check_faulted_run(&r, &FaultStats::default(), 0x1234).is_empty());
    }

    #[test]
    fn fired_faults_relax_i7_only() {
        let stats = FaultStats {
            tools_failed: 1,
            ..FaultStats::default()
        };
        let mut r = clean_run();
        r.tool_failures = 1;
        r.digest = 0xdead;
        assert!(check_faulted_run(&r, &stats, 0x1234).is_empty());
    }

    #[test]
    fn wire_faults_do_not_relax_i7() {
        // Wire families perturb only the distnet legs; if the sweeper
        // digest moved while only wire faults fired, that is still I7.
        let stats = FaultStats {
            wire_faults: 12,
            byzantine_rejections: 3,
            bundles_forged: 1,
            ..FaultStats::default()
        };
        let mut r = clean_run();
        r.digest = 0xdead;
        assert_eq!(check_faulted_run(&r, &stats, 0x1234)[0].invariant, "I7");
    }

    #[test]
    fn i8_fires_only_on_unverified_deployment() {
        assert!(check_i8(0, "leg").is_none());
        let v = check_i8(2, "faulted distnet K=4").expect("violation");
        assert_eq!(v.invariant, "I8");
        assert!(v.detail.contains("faulted distnet K=4"), "{}", v.detail);
    }

    #[test]
    fn i10_fires_only_on_digest_divergence() {
        assert!(check_i10(7, 7, "fleet").is_none());
        let v = check_i10(7, 8, "fleet").expect("violation");
        assert_eq!(v.invariant, "I10");
        assert!(v.detail.contains("shards=1"), "{}", v.detail);
    }

    #[test]
    fn i12_fires_only_on_benign_domain_disturbance() {
        assert!(check_i12(0, "fleet leg").is_none());
        let v = check_i12(2, "fleet leg").expect("violation");
        assert_eq!(v.invariant, "I12");
        assert!(v.detail.contains("2 benign-domain"), "{}", v.detail);
        assert!(v.detail.contains("fleet leg"), "{}", v.detail);
    }

    #[test]
    fn i11_fires_only_on_engine_parity_mismatch() {
        assert!(check_i11(0, "community K=1").is_none());
        let v = check_i11(3, "faulted distnet K=4").expect("violation");
        assert_eq!(v.invariant, "I11");
        assert!(v.detail.contains("3 SoA/legacy"), "{}", v.detail);
        assert!(v.detail.contains("faulted distnet K=4"), "{}", v.detail);
    }
}
