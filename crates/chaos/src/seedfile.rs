//! The CI quarantine seed-file format (`chaos --seed-file`).
//!
//! One seed per line, decimal or `0x`-hex; `#` starts a comment; blank
//! lines are ignored. The file is a *gate input* — every listed seed is
//! a once-failing case that must replay clean before the random smoke
//! runs — so the parser *rejects* anything suspicious instead of
//! skipping it: a malformed line or a duplicate seed used to shrink the
//! quarantine suite silently, which is exactly how a regression slips
//! back past CI.

/// Why a quarantine seed file was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeedFileError {
    /// A non-comment line did not parse as a decimal or `0x`-hex `u64`.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// The offending text (comment stripped, trimmed).
        content: String,
    },
    /// The same seed value appears twice (`10` and `0xa` collide: the
    /// *value* is the case identity, not the spelling). A duplicate is
    /// always an editing mistake — replaying a seed twice proves
    /// nothing extra — and usually means a merge clobbered a different
    /// seed that was meant to be there.
    Duplicate {
        /// 1-based line number of the second occurrence.
        line: usize,
        /// The duplicated seed value.
        seed: u64,
        /// 1-based line number of the first occurrence.
        first_line: usize,
    },
}

impl core::fmt::Display for SeedFileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SeedFileError::Malformed { line, content } => {
                write!(f, "line {line}: malformed seed {content:?}")
            }
            SeedFileError::Duplicate {
                line,
                seed,
                first_line,
            } => write!(
                f,
                "line {line}: duplicate seed {seed:#x} (first listed on line {first_line})"
            ),
        }
    }
}

/// Parse one seed spelling: decimal or `0x`/`0X`-prefixed hex.
pub fn parse_seed(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

/// Parse the body of a quarantine seed file, preserving listing order.
///
/// Fails closed with a named [`SeedFileError`] on the first malformed
/// or duplicate line — never by silently dropping entries.
pub fn parse_seed_list(text: &str) -> Result<Vec<u64>, SeedFileError> {
    let mut seeds: Vec<(u64, usize)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let seed = parse_seed(content).ok_or(SeedFileError::Malformed {
            line,
            content: content.to_string(),
        })?;
        if let Some(&(_, first_line)) = seeds.iter().find(|&&(s, _)| s == seed) {
            return Err(SeedFileError::Duplicate {
                line,
                seed,
                first_line,
            });
        }
        seeds.push((seed, line));
    }
    Ok(seeds.into_iter().map(|(s, _)| s).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_blanks_and_both_radices_parse_in_order() {
        let text = "# quarantine\n12 # once failed\n\n0xBEEF\n0X10\n";
        assert_eq!(parse_seed_list(text), Ok(vec![12, 0xBEEF, 0x10]));
        assert_eq!(parse_seed_list(""), Ok(vec![]));
    }

    #[test]
    fn malformed_lines_name_themselves() {
        let err = parse_seed_list("7\nnot-a-seed\n9\n").unwrap_err();
        assert_eq!(
            err,
            SeedFileError::Malformed {
                line: 2,
                content: "not-a-seed".into()
            }
        );
        // Out-of-range and junk-suffixed numbers are malformed too.
        assert!(matches!(
            parse_seed_list("99999999999999999999999"),
            Err(SeedFileError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse_seed_list("12fish"),
            Err(SeedFileError::Malformed { line: 1, .. })
        ));
    }

    #[test]
    fn duplicates_are_rejected_by_value_not_spelling() {
        let err = parse_seed_list("10\n5\n0xa\n").unwrap_err();
        assert_eq!(
            err,
            SeedFileError::Duplicate {
                line: 3,
                seed: 10,
                first_line: 1
            }
        );
        assert!(err.to_string().contains("0xa"), "{err}");
    }
}
