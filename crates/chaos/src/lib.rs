//! # chaos — deterministic fault injection and differential fuzzing
//!
//! The paper's end-to-end claim — lightweight monitor trips → rollback →
//! heavyweight re-execution → antibody → resume — is a chain of
//! hand-offs, and every hand-off can fail in a real deployment. This
//! crate drives the *whole* pipeline (svm → dbi → checkpoint → sweeper →
//! antibody → epidemic) under seeded fault plans and checks that it
//! degrades instead of breaking. Everything derives from one `u64` case
//! seed through the in-tree counter-based PRNG
//! ([`epidemic::rng::draw`]), so any failing case replays exactly from
//! its seed:
//!
//! ```text
//! cargo run --release -p chaos -- --seed 0xDEADBEEF
//! ```
//!
//! Three pillars (see `TESTING.md` for the operator guide):
//!
//! - **[`plan`]** — [`plan::FaultPlan`]: a seeded implementation of
//!   [`sweeper::FaultHooks`] injecting analysis-tool failures, mid-replay
//!   DBI detaches, checkpoint-ring eviction races, dropped / corrupted /
//!   reordered proxy replays, and antibody bit-flips. Every decision is a
//!   pure function of `(seed, domain, counter)`.
//! - **[`invariants`]** — the contract checked after every faulted run:
//!   the pipeline never panics, detection always yields an antibody *or*
//!   an explicit degradation on the record, the bookkeeping identities
//!   hold, and a plan that fired nothing is bit-identical to the
//!   unfaulted run.
//! - **[`runner`]** — the differential fuzzer: each seeded workload runs
//!   with the decode cache on/off × community parallelism K ∈ {1, 4}
//!   (metrics always on) and all four outcome digests must be bit-equal;
//!   the outbreak then re-runs over the antibody distribution network —
//!   a perfect wire must reproduce the legacy clock bit-identically, a
//!   seeded lossy/Byzantine wire must stay shard-invariant, forged
//!   bundles must be rejected (invariant I8) — and finally the same
//!   workload runs again under the fault plan and the invariant checker
//!   takes over. Every community leg runs both contact-state backends
//!   in lockstep (`CommunityEngine::Differential`) and their parity
//!   mismatch count must be zero (invariant I11).
//!
//! [`scenario`] turns a seed into a concrete workload (guest app, benign
//! traffic, exploit schedule, deployment knobs) and [`digest`] defines
//! the stable outcome fingerprint (wall-clock values and cache-internal
//! counters excluded).

pub mod digest;
pub mod invariants;
pub mod plan;
pub mod runner;
pub mod scenario;
pub mod seedfile;

pub use digest::{digest_community, digest_community_epidemic, digest_sweeper, Hasher};
pub use invariants::{check_faulted_run, check_i12, check_i8, FaultedRun, Violation};
pub use plan::{FaultPlan, FaultStats, SharedStats, WirePlan};
pub use runner::{run_case, run_many, CaseReport, Summary};
pub use scenario::{CaseScenario, Request};
pub use seedfile::{parse_seed, parse_seed_list, SeedFileError};
