//! The case runner: differential legs, the faulted run, aggregation.
//!
//! One fuzz case (= one seed) is:
//!
//! 1. **Differential legs** — the scenario's workload runs unfaulted
//!    on all three execution tiers (icache + superblocks, icache only,
//!    pure interpreter), and the scenario's community outbreak runs
//!    with K = 1 and K = 4 shards. The six combined outcome digests
//!    (tier × K, metrics always on) must be bit-equal: all the knobs
//!    are pure performance knobs, and any divergence is a determinism
//!    bug. Every community leg additionally runs
//!    `CommunityEngine::Differential` (PR 9): the legacy dense oracle
//!    and the SoA bitset backend execute in lockstep and their parity
//!    mismatch count must be zero (invariant I11, checked on every
//!    community leg, never relaxed by fired faults). A third of the
//!    seeds also arm the connection-failure estimator so containment
//!    draws are fuzzed across both backends.
//! 2. **Distribution-network legs (PR 5)** — the same outbreak runs
//!    with the antibody distribution network on a *perfect* wire at
//!    K ∈ {1, 4}: its epidemic core must be bit-identical to the legacy
//!    legs (the zero-fault anchor) and its full digests shard-invariant.
//!    When the seed's wire families are enabled, a contained outbreak
//!    runs again over a lossy/Byzantine wire (K ∈ {1, 4}, digests must
//!    still be shard-invariant) and, for forge seeds, a certified
//!    bundle is forged in the producer→consumer hand-off. Invariant I8
//!    — no consumer ever deploys an unverified bundle — is checked on
//!    every distnet leg.
//! 3. **Fleet reactor leg (PR 8)** — a miniature fleet (3 hosts, the
//!    case's guest, outbreak on even seeds) runs at 1 and 3 reactor
//!    shards; the fleet outcome digests must be bit-equal
//!    (invariant I10).
//! 4. **Faulted run** — the same workload runs again with the seeded
//!    [`FaultPlan`] installed, inside `catch_unwind`. The
//!    [invariant catalog](crate::invariants) is checked over the result.
//!
//! Every decision in all three phases derives from the case seed, so a
//! failing case replays exactly with `chaos --seed 0x<seed>`.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use apps::App;
use epidemic::community::CommunityOutcome;
use epidemic::rng::draw;
use epidemic::DistNetParams;
use sweeper::{BundleOutcome, Config, RequestOutcome, Role, Sweeper};

use crate::digest::{digest_community, digest_community_epidemic, digest_sweeper, Hasher};
use crate::invariants::{check_faulted_run, check_i10, check_i11, check_i8, FaultedRun, Violation};
use crate::plan::{FaultPlan, FaultStats, WirePlan};
use crate::scenario::CaseScenario;

/// Domain separators for the bundle hand-off leg's draws.
const DOM_FORGE_KEY: u64 = 0xc4a0_0060;
const DOM_FORGE_MODE: u64 = 0xc4a0_0061;

/// Everything about one executed fuzz case.
#[derive(Debug, Clone)]
pub struct CaseReport {
    /// The case seed (replay handle).
    pub seed: u64,
    /// Guest server name.
    pub guest: String,
    /// Baseline (unfaulted, cache-on, K=1) combined digest.
    pub digest: u64,
    /// What the fault plan fired.
    pub stats: FaultStats,
    /// Violations found (empty = case passed).
    pub violations: Vec<Violation>,
    /// Pipeline executions this case cost (sweeper drives + community
    /// runs), for throughput reporting.
    pub execs: u64,
}

impl CaseReport {
    /// Whether the case passed every check.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Aggregate over a batch of cases.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    /// Cases executed.
    pub cases: u64,
    /// Total pipeline executions.
    pub execs: u64,
    /// Wall-clock seconds for the batch.
    pub wall_secs: f64,
    /// Faults fired, aggregated across all cases.
    pub agg: FaultStats,
    /// Every violation, tagged with its case seed.
    pub violations: Vec<(u64, Violation)>,
    /// Cases per guest server.
    pub guests: BTreeMap<String, u64>,
}

impl Summary {
    /// Pipeline executions per wall-clock second.
    pub fn execs_per_sec(&self) -> f64 {
        if self.wall_secs > 0.0 {
            self.execs as f64 / self.wall_secs
        } else {
            0.0
        }
    }

    /// Distinct fault families exercised across the batch.
    pub fn families_fired(&self) -> usize {
        self.agg.families_fired()
    }

    /// The batch as a metrics registry (`chaos.*` counters): the
    /// evidence that fault families were genuinely exercised.
    pub fn metrics(&self) -> obs::MetricsRegistry {
        let mut reg = obs::MetricsRegistry::new();
        self.agg.export(&mut reg);
        reg.set_counter("chaos.cases", self.cases);
        reg.set_counter("chaos.execs", self.execs);
        reg.set_counter("chaos.violations", self.violations.len() as u64);
        reg
    }
}

/// Drive one host through the scenario's workload. Returns the
/// flattened observation, or the panic message if the pipeline panicked
/// (which is itself an I1 violation).
fn drive(
    scenario: &CaseScenario,
    app: &App,
    cache: bool,
    superblocks: bool,
    plan: Option<FaultPlan>,
) -> Result<FaultedRun, String> {
    let producer = scenario.role == Role::Producer;
    let requests: Vec<Vec<u8>> = scenario
        .requests
        .iter()
        .map(|r| r.bytes().to_vec())
        .collect();
    let config = scenario.config();
    let outcome = catch_unwind(AssertUnwindSafe(move || -> Result<FaultedRun, String> {
        let mut s = Sweeper::protect(app, config).map_err(|e| format!("protect: {e}"))?;
        s.machine.set_decode_cache(cache);
        s.machine.set_superblocks(cache && superblocks);
        if let Some(p) = plan {
            s.set_fault_hooks(Box::new(p));
        }
        let (mut served, mut filtered, mut attacks) = (0u64, 0u64, 0u64);
        for input in requests {
            match s.offer_request(input) {
                RequestOutcome::Served { .. } => served += 1,
                RequestOutcome::Filtered { .. } => filtered += 1,
                RequestOutcome::Attack(_) => attacks += 1,
            }
        }
        let reg = s.export_metrics();
        Ok(FaultedRun {
            offered: scenario.requests.len() as u64,
            served,
            filtered,
            attacks,
            restarts: reg.counter("recovery.restarts"),
            rollback_replays: reg.counter("recovery.rollback_replays"),
            conns_logged: reg.counter("proxy.conns_logged"),
            proxy_filtered: reg.counter("proxy.filtered_total"),
            tool_failures: reg.counter("pipeline.tool_failures"),
            antibody_corrupt: reg.counter("sweeper.antibody_corrupt_total"),
            parity_mismatches: reg.counter("checkpoint.parity_mismatches"),
            i12_violations: reg.counter("recovery.i12_violations"),
            domain_parity_mismatches: reg.counter("recovery.domain_parity_mismatches"),
            deployed_vsefs: s.deployed_vsefs() as u64,
            deployed_signatures: s.signatures.len() as u64,
            healthy: s.status().healthy,
            producer,
            digest: digest_sweeper(&s),
        })
    }));
    match outcome {
        Ok(r) => r,
        Err(payload) => Err(panic_message(payload)),
    }
}

/// Extract a printable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: <non-string payload>".to_string()
    }
}

/// The certified-bundle hand-off leg: a producer analyzes the
/// scenario's canonical exploit and seals its antibody into a certified
/// bundle; a seed-chosen *forgery* of that bundle is then offered to a
/// consumer. Returns the consumer's deployed-VSEF count afterwards —
/// anything nonzero (or any deployment at all) is an I8 violation — or
/// a setup/panic message, surfaced by the caller as I1.
fn run_forge_leg(scenario: &CaseScenario, app: &App) -> Result<u64, String> {
    let seed = scenario.seed;
    let outcome = catch_unwind(AssertUnwindSafe(|| -> Result<u64, String> {
        let key = draw(seed, DOM_FORGE_KEY, 0);
        let mut producer = Sweeper::protect(app, Config::producer(seed ^ 0xfeed))
            .map_err(|e| format!("protect producer: {e}"))?;
        let RequestOutcome::Attack(report) = producer.offer_request(scenario.canonical_exploit())
        else {
            return Err("canonical exploit not detected by the producer".into());
        };
        let Some(analysis) = report.analysis.as_ref() else {
            return Err("producer emitted no analysis".into());
        };
        let Some(bundle) = producer.certify_antibody(1, 0, key, &analysis.antibody) else {
            return Err("analysis antibody carried no exploit input".into());
        };
        let forged = match draw(seed, DOM_FORGE_MODE, 0) % 3 {
            0 => bundle.forged_bad_tag(),
            1 => bundle.forged_corrupt_payload(key, 0),
            _ => bundle.forged_mismatched_evidence(key, b"GET / HTTP/1.0\n".to_vec()),
        };
        let mut consumer = Sweeper::protect(app, Config::consumer(seed ^ 0xc0de))
            .map_err(|e| format!("protect consumer: {e}"))?;
        match consumer.receive_certified(&forged, key) {
            // A deployment of a forged bundle is the I8 violation the
            // caller checks for; report at least 1.
            BundleOutcome::Deployed { vsefs, .. } => Ok((vsefs as u64).max(1)),
            BundleOutcome::Rejected(_) | BundleOutcome::SenderQuarantined => {
                Ok(consumer.deployed_vsefs() as u64)
            }
        }
    }));
    match outcome {
        Ok(r) => r,
        Err(p) => Err(panic_message(p)),
    }
}

/// Execute one fuzz case (see module docs).
pub fn run_case(seed: u64) -> CaseReport {
    let scenario = CaseScenario::from_seed(seed);
    let guest = format!("{:?}", scenario.target);
    let mut violations = Vec::new();
    let mut execs = 0u64;

    let app = match scenario.app() {
        Ok(a) => a,
        Err(e) => {
            return CaseReport {
                seed,
                guest,
                digest: 0,
                stats: FaultStats::default(),
                violations: vec![Violation {
                    invariant: "setup",
                    detail: format!("guest failed to assemble: {e}"),
                }],
                execs: 0,
            }
        }
    };

    // Everything the wire legs and the faulted run need derives from
    // the one seeded plan, so compute it up front.
    let (plan, stats) = FaultPlan::from_seed(seed);
    let wire: WirePlan = plan.wire();

    // ---- Differential legs (unfaulted). ------------------------------
    // Three execution tiers (PR 6): full stack (icache + superblocks),
    // icache only, and the pure interpreter. All must be bit-identical.
    let sweeper_legs: Vec<((bool, bool), Result<FaultedRun, String>)> =
        [(true, true), (true, false), (false, false)]
            .into_iter()
            .map(|(cache, sb)| {
                execs += 1;
                ((cache, sb), drive(&scenario, &app, cache, sb, None))
            })
            .collect();
    let community_legs: Vec<(usize, CommunityOutcome)> = [1usize, 4]
        .into_iter()
        .map(|k| {
            execs += 1;
            (k, epidemic::community::run(&scenario.community_with(k)))
        })
        .collect();
    // Every community leg runs `CommunityEngine::Differential` (the
    // scenario pins it): the legacy dense oracle and the SoA backend in
    // lockstep, parity checked here as invariant I11.
    for (k, epi) in &community_legs {
        let m = epi.soa_parity_mismatches.unwrap_or(0);
        if let Some(v) = check_i11(m, &format!("community K={k}")) {
            violations.push(v);
        }
    }

    let mut baseline: Option<FaultedRun> = None;
    let mut leg_digests: Vec<(String, u64)> = Vec::new();
    for ((cache, sb), leg) in &sweeper_legs {
        match leg {
            Ok(run) => {
                // Unfaulted legs must satisfy the catalog too (with the
                // run itself as its own I7 baseline).
                for v in check_faulted_run(run, &FaultStats::default(), run.digest) {
                    violations.push(Violation {
                        invariant: v.invariant,
                        detail: format!("unfaulted leg cache={cache},sb={sb}: {}", v.detail),
                    });
                }
                for (k, epi) in &community_legs {
                    let combined = Hasher::new()
                        .u64(run.digest)
                        .u64(digest_community(epi))
                        .finish();
                    leg_digests.push((format!("cache={cache},sb={sb},K={k}"), combined));
                }
                if *cache && baseline.is_none() {
                    baseline = Some(run.clone());
                }
            }
            Err(msg) => violations.push(Violation {
                invariant: "I1",
                detail: format!("unfaulted leg cache={cache},sb={sb}: {msg}"),
            }),
        }
    }
    if let Some((_, first)) = leg_digests.first() {
        for (name, d) in &leg_digests {
            if d != first {
                violations.push(Violation {
                    invariant: "differential",
                    detail: format!(
                        "leg {name} digest {d:#018x} != leg {} digest {first:#018x}",
                        leg_digests[0].0
                    ),
                });
            }
        }
    }

    // ---- Distribution-network legs (PR 5). ---------------------------
    // (a) Zero-fault anchor: a perfect wire must reproduce the legacy
    // clock's epidemic core bit-identically, at K = 1 and K = 4.
    let legacy_epi = community_legs
        .first()
        .map(|(_, o)| digest_community_epidemic(o));
    let ideal_legs: Vec<(usize, CommunityOutcome)> = [1usize, 4]
        .into_iter()
        .map(|k| {
            execs += 1;
            let p = scenario.community_distnet(k, DistNetParams::ideal());
            (k, epidemic::community::run(&p))
        })
        .collect();
    for (k, out) in &ideal_legs {
        if let Some(d) = out.dist.as_ref() {
            if let Some(v) = check_i8(d.deployed_unverified, &format!("ideal distnet K={k}")) {
                violations.push(v);
            }
        }
        let m = out.soa_parity_mismatches.unwrap_or(0);
        if let Some(v) = check_i11(m, &format!("ideal distnet K={k}")) {
            violations.push(v);
        }
        if let Some(legacy) = legacy_epi {
            let epi = digest_community_epidemic(out);
            if epi != legacy {
                violations.push(Violation {
                    invariant: "differential",
                    detail: format!(
                        "ideal distnet K={k} epidemic digest {epi:#018x} != legacy {legacy:#018x}"
                    ),
                });
            }
        }
    }
    if let [(_, a), (_, b)] = &ideal_legs[..] {
        let (da, db) = (digest_community(a), digest_community(b));
        if da != db {
            violations.push(Violation {
                invariant: "differential",
                detail: format!("ideal distnet K=1 digest {da:#018x} != K=4 digest {db:#018x}"),
            });
        }
    }

    // (b) Faulted wire: when the seed's wire families are enabled, a
    // *contained* outbreak (so the network reliably activates) runs over
    // the lossy/Byzantine wire at K ∈ {1, 4}. Digests must still be
    // shard-invariant and I8 must hold; the K = 1 leg's shard counters
    // feed the wire columns of the fault-coverage report.
    let (mut wire_fired, mut byz_rejections, mut forged_bundles) = (0u64, 0u64, 0u64);
    if wire.any_wire_fault() {
        let dn = DistNetParams {
            loss: wire.loss,
            dup: wire.dup,
            max_delay_ticks: wire.max_delay_ticks,
            byzantine: wire.byzantine,
            ..DistNetParams::ideal()
        };
        let faulted_legs: Vec<(usize, CommunityOutcome)> = [1usize, 4]
            .into_iter()
            .map(|k| {
                execs += 1;
                let p = scenario.community_contained_distnet(k, dn);
                (k, epidemic::community::run(&p))
            })
            .collect();
        for (k, out) in &faulted_legs {
            if let Some(d) = out.dist.as_ref() {
                if let Some(v) = check_i8(d.deployed_unverified, &format!("faulted distnet K={k}"))
                {
                    violations.push(v);
                }
            }
            // I11 is never relaxed by fired wire faults: both backends
            // see the identical faulted wire, so they must still agree.
            let m = out.soa_parity_mismatches.unwrap_or(0);
            if let Some(v) = check_i11(m, &format!("faulted distnet K={k}")) {
                violations.push(v);
            }
        }
        if let [(_, a), (_, b)] = &faulted_legs[..] {
            let (da, db) = (digest_community(a), digest_community(b));
            if da != db {
                violations.push(Violation {
                    invariant: "differential",
                    detail: format!(
                        "faulted distnet K=1 digest {da:#018x} != K=4 digest {db:#018x}"
                    ),
                });
            }
        }
        if let Some(d) = faulted_legs.first().and_then(|(_, o)| o.dist.as_ref()) {
            for s in &d.shard_stats {
                wire_fired += s.drops + s.dups + s.delayed;
                byz_rejections += s.rejected;
            }
        }
    }

    // (c) Bundle forgery: for forge seeds, a certified bundle is forged
    // in the producer → consumer hand-off; the consumer must reject it.
    if wire.forge_bundles {
        execs += 2; // producer analysis run + consumer verification
        match run_forge_leg(&scenario, &app) {
            Ok(deployed) => {
                forged_bundles += 1;
                if let Some(v) = check_i8(deployed, "forged bundle hand-off") {
                    violations.push(v);
                }
            }
            Err(msg) => violations.push(Violation {
                invariant: "I1",
                detail: format!("forge leg: {msg}"),
            }),
        }
    }

    // ---- Fleet reactor leg (PR 8). -----------------------------------
    // A miniature fleet runs the case's guest at 1 and 3 reactor
    // shards; the outcome digests must be bit-equal (invariant I10).
    // Even seeds include a mid-run outbreak so the contact process and
    // antibody broadcast paths are exercised under the comparison too.
    {
        let fcfg = fleet::FleetConfig {
            hosts: 3,
            shards: 1,
            seed,
            target: scenario.target,
            arrival_rate_hz: 2.0,
            horizon_ms: 400.0,
            outbreak_at_ms: seed.is_multiple_of(2).then_some(150.0),
            producer_every: 3,
            worm_rate_hz: 40.0,
            fanout: 2,
            wire_delay_ms: (5.0, 25.0),
            interval_ms: 200,
            contact_cap: 6,
            // The fleet leg fuzzes the recovery knob too: whatever mode
            // the scenario drew runs identically on both shard counts,
            // so I10 still compares like with like.
            recovery: scenario.recovery,
        };
        execs += 2;
        match (fleet::run(&fcfg), fleet::run(&fcfg.with_shards(3))) {
            (Ok(serial), Ok(sharded)) => {
                if let Some(v) = check_i10(serial.digest, sharded.digest, "fleet leg") {
                    violations.push(v);
                }
            }
            (Err(msg), _) | (_, Err(msg)) => violations.push(Violation {
                invariant: "I1",
                detail: format!("fleet leg: {msg}"),
            }),
        }
    }

    // ---- Faulted run. ------------------------------------------------
    execs += 1;
    let faulted = drive(&scenario, &app, true, true, Some(plan));
    let fired_hooks = *stats.lock().unwrap();
    let mut fired = fired_hooks;
    fired.wire_faults = wire_fired;
    fired.byzantine_rejections = byz_rejections;
    fired.bundles_forged = forged_bundles;
    match (&faulted, &baseline) {
        (Ok(run), Some(base)) => {
            violations.extend(check_faulted_run(run, &fired, base.digest));
        }
        (Ok(run), None) => {
            // Baseline itself failed; still check the standalone
            // invariants (I7 degenerates to self-comparison).
            violations.extend(check_faulted_run(run, &fired, run.digest));
        }
        (Err(msg), _) => violations.push(Violation {
            invariant: "I1",
            detail: format!("faulted run ({fired:?}): {msg}"),
        }),
    }

    CaseReport {
        seed,
        guest,
        digest: leg_digests.first().map(|(_, d)| *d).unwrap_or(0),
        stats: fired,
        violations,
        execs,
    }
}

/// Run a batch of seeds with panics silenced (they are *reported*, as
/// I1 violations — just not splattered over stderr mid-batch).
pub fn run_many(seeds: impl IntoIterator<Item = u64>) -> Summary {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let start = Instant::now();
    let mut summary = Summary::default();
    for seed in seeds {
        let report = run_case(seed);
        summary.cases += 1;
        summary.execs += report.execs;
        summary.agg.absorb(&report.stats);
        *summary.guests.entry(report.guest.clone()).or_insert(0) += 1;
        for v in report.violations {
            summary.violations.push((seed, v));
        }
    }
    summary.wall_secs = start.elapsed().as_secs_f64();
    std::panic::set_hook(prev);
    summary
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_case_replays_bit_identically_from_its_seed() {
        let a = run_case(3);
        let b = run_case(3);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.violations, b.violations);
        assert_eq!(a.execs, b.execs);
    }

    #[test]
    fn first_seeds_pass_and_cover_every_guest() {
        let summary = run_many(0..8);
        assert!(
            summary.violations.is_empty(),
            "violations: {:?}",
            summary.violations
        );
        assert_eq!(summary.guests.len(), 4, "guests: {:?}", summary.guests);
        assert_eq!(summary.cases, 8);
        assert!(summary.execs >= 8 * 5);
    }
}
