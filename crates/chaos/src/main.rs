//! The `chaos` binary: seeded fault-injection + differential fuzzing
//! over the whole Sweeper pipeline.
//!
//! ```text
//! cargo run --release -p chaos -- --seeds 500       # fuzz seeds 0..500
//! cargo run --release -p chaos -- --seed 0xDEADBEEF # replay one case, verbose
//! cargo run --release -p chaos -- --smoke           # bounded CI gate (see below)
//! cargo run --release -p chaos -- --seeds 200 --json # machine-readable summary
//! ```
//!
//! `--smoke` is the tier-2 CI mode: a fixed seed block (0..SMOKE_CASES)
//! covering all four guests, with the additional gates that zero
//! violations occur, at least three distinct fault families actually
//! fired (so a refactor that silently disconnects the fault seams fails
//! CI instead of green-washing it), **and** each of the three wire
//! families (loss, Byzantine rejections, bundle forgeries) genuinely
//! exercised the distribution network at least once.
//!
//! Exit status: 0 = all checks passed, 1 = violations (each printed with
//! its replay command), 2 = bad usage.

use chaos::seedfile::{parse_seed, parse_seed_list};
use chaos::{run_case, run_many, CaseScenario, Summary};

/// Cases in `--smoke` mode. Seeds are `0..SMOKE_CASES`; the guest
/// rotates with `seed % 4`, so all four Table 1 servers get
/// `SMOKE_CASES / 4` cases each.
const SMOKE_CASES: u64 = 200;

/// Minimum distinct fault families `--smoke` must observe firing.
const SMOKE_MIN_FAMILIES: usize = 3;

fn usage() -> ! {
    eprintln!(
        "usage: chaos [--seeds N] [--base SEED] [--seed SEED] [--seed-file PATH] [--smoke] [--json]\n\
         \n\
         --seeds N       fuzz N sequential cases (default base 0)\n\
         --base SEED     first seed for --seeds (decimal or 0x-hex)\n\
         --seed SEED     replay exactly one case, verbosely\n\
         --seed-file P   replay every seed listed in P (one per line,\n\
        \u{20}                decimal or 0x-hex; # starts a comment) — the\n\
        \u{20}                CI quarantine list of once-failing seeds\n\
         --smoke         bounded CI gate: {SMOKE_CASES} cases, all guests,\n\
        \u{20}                zero violations, >= {SMOKE_MIN_FAMILIES} fault families fired\n\
         --json          print the summary as one JSON object"
    );
    std::process::exit(2);
}

/// Parse a quarantine seed file (see [`chaos::seedfile`]): one seed per
/// line, `#` to end-of-line is a comment, blank lines ignored. A
/// malformed or duplicate line is a named, fatal error — a bad line
/// must never shrink the quarantine suite silently.
fn parse_seed_file(path: &str) -> Result<Vec<u64>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_seed_list(&text).map_err(|e| format!("{path}: {e}"))
}

fn print_summary(s: &Summary, json: bool) {
    if json {
        let fams: Vec<String> = s
            .agg
            .named()
            .iter()
            .map(|(n, c)| format!("\"{n}\":{c}"))
            .collect();
        println!(
            "{{\"cases\":{},\"execs\":{},\"wall_secs\":{:.3},\"execs_per_sec\":{:.1},\
             \"violations\":{},\"families_fired\":{},\"faults\":{{{}}}}}",
            s.cases,
            s.execs,
            s.wall_secs,
            s.execs_per_sec(),
            s.violations.len(),
            s.families_fired(),
            fams.join(",")
        );
        return;
    }
    println!(
        "chaos: {} cases, {} pipeline execs in {:.2}s ({:.1} execs/s)",
        s.cases,
        s.execs,
        s.wall_secs,
        s.execs_per_sec()
    );
    let guests: Vec<String> = s.guests.iter().map(|(g, n)| format!("{g}:{n}")).collect();
    println!("guests: {}", guests.join(" "));
    println!("faults fired ({} families):", s.families_fired());
    for (name, count) in s.agg.named() {
        println!("  chaos.fault.{name:<22} {count}");
    }
    if s.violations.is_empty() {
        println!("violations: none");
    } else {
        println!("violations: {}", s.violations.len());
        for (seed, v) in &s.violations {
            println!("  [{}] seed {seed:#x}: {}", v.invariant, v.detail);
            println!("      replay: cargo run --release -p chaos -- --seed {seed:#x}");
        }
    }
}

fn replay_one(seed: u64) -> i32 {
    let scenario = CaseScenario::from_seed(seed);
    println!(
        "case {seed:#x}: guest={:?} role={:?} requests={} attacks={} \
         interval={}ms retained={} sampling={} slicing={} engine={:?} recovery={}",
        scenario.target,
        scenario.role,
        scenario.requests.len(),
        scenario.attacks_scheduled(),
        scenario.interval_ms,
        scenario.retained,
        scenario.sample_rate,
        scenario.run_slicing,
        scenario.engine,
        scenario.recovery.name(),
    );
    let report = run_case(seed);
    println!("digest: {:#018x}", report.digest);
    println!("faults fired: {:?}", report.stats);
    if report.ok() {
        println!("PASS");
        0
    } else {
        for v in &report.violations {
            println!("FAIL [{}]: {}", v.invariant, v.detail);
        }
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seeds_n: Option<u64> = None;
    let mut base: u64 = 0;
    let mut one_seed: Option<u64> = None;
    let mut seed_file: Option<String> = None;
    let mut smoke = false;
    let mut json = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed-file" => match it.next() {
                Some(p) => seed_file = Some(p.clone()),
                None => usage(),
            },
            "--seeds" => match it.next().and_then(|v| parse_seed(v)) {
                Some(n) => seeds_n = Some(n),
                None => usage(),
            },
            "--base" => match it.next().and_then(|v| parse_seed(v)) {
                Some(b) => base = b,
                None => usage(),
            },
            "--seed" => match it.next().and_then(|v| parse_seed(v)) {
                Some(s) => one_seed = Some(s),
                None => usage(),
            },
            "--smoke" => smoke = true,
            "--json" => json = true,
            _ => usage(),
        }
    }

    if let Some(seed) = one_seed {
        std::process::exit(replay_one(seed));
    }

    // Quarantine replay: run exactly the committed once-failing seeds.
    // Zero violations is the only gate — these seeds are pinned because
    // they once broke the pipeline, so they run before any random batch.
    if let Some(path) = seed_file {
        let seeds = match parse_seed_file(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("chaos: {e}");
                std::process::exit(2);
            }
        };
        println!(
            "chaos: replaying {} quarantined seed(s) from {path}",
            seeds.len()
        );
        let summary = run_many(seeds);
        print_summary(&summary, json);
        std::process::exit(i32::from(!summary.violations.is_empty()));
    }

    let n = if smoke {
        SMOKE_CASES
    } else {
        seeds_n.unwrap_or(64)
    };
    let summary = run_many(base..base.saturating_add(n));
    print_summary(&summary, json);

    let mut failed = !summary.violations.is_empty();
    if smoke {
        if summary.guests.len() < 4 {
            eprintln!("smoke: FAIL — only {} guests covered", summary.guests.len());
            failed = true;
        }
        if summary.families_fired() < SMOKE_MIN_FAMILIES {
            eprintln!(
                "smoke: FAIL — only {} fault families fired (need >= {SMOKE_MIN_FAMILIES})",
                summary.families_fired()
            );
            failed = true;
        }
        for (name, count) in [
            ("wire_faults", summary.agg.wire_faults),
            ("byzantine_rejections", summary.agg.byzantine_rejections),
            ("bundles_forged", summary.agg.bundles_forged),
        ] {
            if count == 0 {
                eprintln!("smoke: FAIL — wire family {name} never fired");
                failed = true;
            }
        }
        // The PR-10 recovery families must genuinely fire (every firing
        // is a forced fail-closed fallback to Full, checked by I12 and
        // the differential recovery oracle above).
        for (name, count) in [
            ("domain_tags_corrupted", summary.agg.domain_tags_corrupted),
            ("domain_spills_forced", summary.agg.domain_spills_forced),
        ] {
            if count == 0 {
                eprintln!("smoke: FAIL — recovery family {name} never fired");
                failed = true;
            }
        }
        if !failed {
            println!(
                "smoke: OK ({} cases, {} guests, {} fault families)",
                summary.cases,
                summary.guests.len(),
                summary.families_fired()
            );
        }
    }
    std::process::exit(i32::from(failed));
}
