//! Seed → workload: the deterministic case generator.
//!
//! A [`CaseScenario`] fixes everything about one fuzz case except the
//! fault plan: which guest server runs, the deployment knobs (role,
//! checkpoint cadence, retention, sampling, slicing), the benign request
//! stream, and where exploit variants land in it. The guest rotates with
//! `seed % 4`, so any contiguous block of ≥ 4 seeds covers all four
//! Table 1 servers.

use apps::workload::{Target, Workload};
use apps::{cvs, httpd1, httpd2, squid, App};
use checkpoint::Engine;
use epidemic::community::{CommunityEngine, CommunityParams, Parallelism};
use epidemic::distnet::DistNetParams;
use epidemic::failest::FailContParams;
use epidemic::rng::draw;
use sweeper::{Config, RecoveryMode, Role};

// Domain separators for scenario-shaping draws.
const DOM_BENIGN_N: u64 = 0x5ce0_0001;
const DOM_ATTACK_N: u64 = 0x5ce0_0002;
const DOM_ATTACK_POS: u64 = 0x5ce0_0003;
const DOM_ATTACK_SALT: u64 = 0x5ce0_0004;
const DOM_ROLE: u64 = 0x5ce0_0005;
const DOM_SAMPLING: u64 = 0x5ce0_0006;
const DOM_INTERVAL: u64 = 0x5ce0_0007;
const DOM_RETAIN: u64 = 0x5ce0_0008;
const DOM_SLICING: u64 = 0x5ce0_0009;
const DOM_ASLR: u64 = 0x5ce0_000a;
const DOM_WORKLOAD: u64 = 0x5ce0_000b;
const DOM_EPI: u64 = 0x5ce0_000c;
const DOM_ENGINE: u64 = 0x5ce0_000d;
const DOM_FAILCONT: u64 = 0x5ce0_000e;
const DOM_RECOVERY: u64 = 0x5ce0_000f;

/// One request in a scenario's schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Benign traffic from the deterministic workload generator.
    Benign(Vec<u8>),
    /// An exploit variant (`salt` 0 is the canonical crash exploit).
    Attack {
        /// Polymorphic variant index.
        salt: u8,
        /// The exploit bytes.
        input: Vec<u8>,
    },
}

impl Request {
    /// The raw bytes offered to the proxy.
    pub fn bytes(&self) -> &[u8] {
        match self {
            Request::Benign(b) => b,
            Request::Attack { input, .. } => input,
        }
    }
}

/// Everything about one fuzz case except the fault plan.
#[derive(Debug, Clone)]
pub struct CaseScenario {
    /// The case seed everything derives from.
    pub seed: u64,
    /// Which guest server this case protects.
    pub target: Target,
    /// Deployment role (mostly producer; 1 in 8 seeds is a consumer).
    pub role: Role,
    /// §4.2 sampling rate (mostly 0; some seeds exercise the taint path).
    pub sample_rate: f64,
    /// Checkpoint interval in virtual milliseconds.
    pub interval_ms: f64,
    /// Retained checkpoints (small values stress the eviction race).
    pub retained: usize,
    /// Whether the slicing verification step runs.
    pub run_slicing: bool,
    /// Checkpoint snapshot engine. Half the seeds run `Differential`
    /// (both engines in lockstep — the strongest parity oracle the
    /// fuzzer has); the rest split between plain `Incremental` and the
    /// legacy `Full` copy.
    pub engine: Engine,
    /// Post-attack recovery strategy. Half the seeds run the default
    /// partial (`Domain`) rollback, a quarter pin the legacy `Full`
    /// path, and a quarter run the `Differential` recovery oracle
    /// (Domain on a shadow clone, Full on the live machine, digests
    /// compared — the strongest partial-recovery oracle the fuzzer has).
    pub recovery: RecoveryMode,
    /// The request schedule, in offer order.
    pub requests: Vec<Request>,
    /// Community-simulation parameters for the epidemic differential leg
    /// (parallelism is filled in per leg by the runner).
    pub community: CommunityParams,
}

impl CaseScenario {
    /// Derive the full scenario for `seed`.
    pub fn from_seed(seed: u64) -> CaseScenario {
        let target = match seed % 4 {
            0 => Target::Apache1,
            1 => Target::Apache2,
            2 => Target::Cvs,
            _ => Target::Squid,
        };
        let role = if draw(seed, DOM_ROLE, 0).is_multiple_of(8) {
            Role::Consumer
        } else {
            Role::Producer
        };
        let sample_rate = if draw(seed, DOM_SAMPLING, 0).is_multiple_of(8) {
            0.3
        } else {
            0.0
        };
        let interval_ms = match draw(seed, DOM_INTERVAL, 0) % 3 {
            0 => 30.0,
            1 => 100.0,
            _ => 200.0,
        };
        let retained = match draw(seed, DOM_RETAIN, 0) % 3 {
            0 => 2,
            1 => 4,
            _ => 20,
        };
        let run_slicing = draw(seed, DOM_SLICING, 0).is_multiple_of(2);
        let engine = match draw(seed, DOM_ENGINE, 0) % 4 {
            0 => Engine::Full,
            1 => Engine::Incremental,
            _ => Engine::Differential,
        };
        let recovery = match draw(seed, DOM_RECOVERY, 0) % 4 {
            0 => RecoveryMode::Full,
            1 => RecoveryMode::Differential,
            _ => RecoveryMode::Domain,
        };

        // Request schedule: 4–10 benign requests with 0–2 exploit
        // variants interleaved after the first benign request (so the
        // fuzzer also covers the attack-free path).
        let n_benign = 4 + (draw(seed, DOM_BENIGN_N, 0) % 7) as usize;
        let n_attacks = (draw(seed, DOM_ATTACK_N, 0) % 3) as usize;
        let mut benign = Workload::new(target, draw(seed, DOM_WORKLOAD, 0));
        let mut requests: Vec<Request> = (0..n_benign)
            .map(|_| Request::Benign(benign.next_request()))
            .collect();
        for a in 0..n_attacks {
            let salt = if a == 0 {
                0
            } else {
                1 + (draw(seed, DOM_ATTACK_SALT, a as u64) % 23) as u8
            };
            let input = exploit_input(target, salt);
            let pos = 1 + (draw(seed, DOM_ATTACK_POS, a as u64) as usize) % requests.len();
            requests.insert(pos, Request::Attack { salt, input });
        }

        // A small community outbreak for the epidemic differential leg.
        // Every leg runs `Differential`: the legacy dense oracle and
        // the SoA backend in lockstep, parity checked per case (I11).
        // A third of the seeds also arm the failure estimator so the
        // containment draws are fuzzed alongside everything else.
        let e = |c: u64| draw(seed, DOM_EPI, c);
        let community = CommunityParams {
            hosts: 600 + e(0) % 1400,
            alpha: 0.002 + (e(1) % 9) as f64 * 0.001,
            rho: if e(2) % 2 == 0 { 1.0 } else { 0.5 },
            gamma_ticks: 4 + e(3) % 16,
            attempts_per_tick: 1 + (e(4) % 2) as u32,
            attempt_prob: 1.0,
            i0: 1 + e(5) % 12,
            max_ticks: 600,
            seed: draw(seed, DOM_EPI, 99),
            parallelism: Parallelism::Fixed(1),
            engine: CommunityEngine::Differential,
            distnet: DistNetParams::disabled(),
            failcont: if draw(seed, DOM_FAILCONT, 0).is_multiple_of(3) {
                FailContParams::standard()
            } else {
                FailContParams::disabled()
            },
        };

        CaseScenario {
            seed,
            target,
            role,
            sample_rate,
            interval_ms,
            retained,
            run_slicing,
            engine,
            recovery,
            requests,
            community,
        }
    }

    /// Assemble the guest application for this scenario.
    pub fn app(&self) -> Result<App, svm::SvmError> {
        match self.target {
            Target::Apache1 => httpd1::app(),
            Target::Apache2 => httpd2::app(),
            Target::Cvs => cvs::app(),
            Target::Squid => squid::app(),
        }
    }

    /// The Sweeper configuration for this scenario.
    pub fn config(&self) -> Config {
        let mut c = match self.role {
            Role::Producer => Config::producer(draw(self.seed, DOM_ASLR, 0)),
            Role::Consumer => Config::consumer(draw(self.seed, DOM_ASLR, 0)),
        }
        .with_interval_ms(self.interval_ms)
        .with_sampling(self.sample_rate)
        .with_engine(self.engine)
        .with_recovery(self.recovery);
        c.retained_checkpoints = self.retained;
        c.run_slicing = self.run_slicing;
        c
    }

    /// The canonical (salt-0) crash exploit for this scenario's guest —
    /// the bundle hand-off leg uses it to make the producer's analysis
    /// pipeline emit a real antibody to certify and then forge.
    pub fn canonical_exploit(&self) -> Vec<u8> {
        exploit_input(self.target, 0)
    }

    /// Number of attack requests scheduled.
    pub fn attacks_scheduled(&self) -> usize {
        self.requests
            .iter()
            .filter(|r| matches!(r, Request::Attack { .. }))
            .count()
    }

    /// Community parameters with the given shard count.
    pub fn community_with(&self, k: usize) -> CommunityParams {
        CommunityParams {
            parallelism: Parallelism::Fixed(k),
            ..self.community
        }
    }

    /// Community parameters with the distribution network configured
    /// (the PR-5 distnet differential legs).
    pub fn community_distnet(&self, k: usize, distnet: DistNetParams) -> CommunityParams {
        CommunityParams {
            parallelism: Parallelism::Fixed(k),
            distnet,
            ..self.community
        }
    }

    /// A *contained* variant of the community outbreak for the faulted
    /// distnet leg: extra producers and ρ = 0.5 so the antibody race is
    /// genuinely winnable and the distribution network reliably
    /// activates (a saturating outbreak never broadcasts, which would
    /// starve the wire-fault families of coverage).
    pub fn community_contained_distnet(&self, k: usize, distnet: DistNetParams) -> CommunityParams {
        CommunityParams {
            parallelism: Parallelism::Fixed(k),
            distnet,
            alpha: self.community.alpha.max(0.04),
            rho: 0.5,
            gamma_ticks: self.community.gamma_ticks.min(8),
            ..self.community
        }
    }
}

/// The exploit input for a guest: salt 0 is the canonical crash
/// exploit, other salts are polymorphic variants.
fn exploit_input(target: Target, salt: u8) -> Vec<u8> {
    // The `_a: &App` parameters of the crash builders are unused by
    // construction (layout-independent exploits), so a minimal deferred
    // app is not required; still, build via the public API.
    match target {
        Target::Apache1 => {
            let a = httpd1::app().expect("httpd1 assembles");
            if salt == 0 {
                httpd1::exploit_crash(&a).input
            } else {
                httpd1::exploit_crash_poly(&a, salt).input
            }
        }
        Target::Apache2 => {
            let a = httpd2::app().expect("httpd2 assembles");
            if salt == 0 {
                httpd2::exploit_crash(&a).input
            } else {
                httpd2::exploit_crash_poly(&a, salt).input
            }
        }
        Target::Cvs => {
            let a = cvs::app().expect("cvs assembles");
            if salt == 0 {
                cvs::exploit_crash(&a).input
            } else {
                cvs::exploit_crash_poly(&a, salt).input
            }
        }
        Target::Squid => {
            let a = squid::app().expect("squid assembles");
            if salt == 0 {
                squid::exploit_crash(&a).input
            } else {
                squid::exploit_crash_poly(&a, salt).input
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_deterministic() {
        for seed in [0u64, 7, 0xfeed] {
            let a = CaseScenario::from_seed(seed);
            let b = CaseScenario::from_seed(seed);
            assert_eq!(a.requests, b.requests);
            assert_eq!(a.community, b.community);
            assert_eq!(a.target, b.target);
        }
    }

    #[test]
    fn four_consecutive_seeds_cover_all_guests() {
        let mut targets: Vec<Target> = (100..104u64)
            .map(|s| CaseScenario::from_seed(s).target)
            .collect();
        targets.sort_by_key(|t| format!("{t:?}"));
        targets.dedup();
        assert_eq!(targets.len(), 4);
    }

    #[test]
    fn seeds_cover_all_three_checkpoint_engines() {
        let engines: std::collections::BTreeSet<String> = (0..32u64)
            .map(|s| format!("{:?}", CaseScenario::from_seed(s).engine))
            .collect();
        assert_eq!(engines.len(), 3, "engines covered: {engines:?}");
    }

    #[test]
    fn seeds_cover_all_three_recovery_modes() {
        let modes: std::collections::BTreeSet<&'static str> = (0..32u64)
            .map(|s| CaseScenario::from_seed(s).recovery.name())
            .collect();
        assert_eq!(modes.len(), 3, "recovery modes covered: {modes:?}");
    }

    #[test]
    fn schedules_mix_benign_and_attacks() {
        let mut with_attacks = 0;
        let mut without = 0;
        for seed in 0..32u64 {
            let s = CaseScenario::from_seed(seed);
            assert!(s.requests.len() >= 4);
            assert!(matches!(s.requests[0], Request::Benign(_)), "warmup first");
            if s.attacks_scheduled() > 0 {
                with_attacks += 1;
            } else {
                without += 1;
            }
        }
        assert!(with_attacks > 0 && without > 0);
    }
}
