//! Stable outcome fingerprints for the differential fuzzer.
//!
//! Two runs are "bit-equal" when their digests match. The digest covers
//! everything semantically observable — CPU state, retired instructions,
//! virtual cycles, connection outputs, the timeline, and the metrics
//! counters — and deliberately excludes what is *allowed* to differ
//! between legs:
//!
//! - wall-clock values (`*wall*` gauges, span `ms` is virtual and kept);
//! - execution-tier internals (`svm.icache.*` and `svm.superblock.*`
//!   counters differ by construction between the tier legs);
//! - shard-topology counters (`epidemic.events_cross_shard` legitimately
//!   depends on K; gauges are excluded wholesale because the parity
//!   contract of the community engine is defined over counters).

use epidemic::community::CommunityOutcome;
use sweeper::Sweeper;

/// FNV-1a 64-bit folding hasher: tiny, dependency-free, deterministic
/// across platforms.
#[derive(Debug, Clone, Copy)]
pub struct Hasher(u64);

impl Default for Hasher {
    fn default() -> Hasher {
        Hasher::new()
    }
}

impl Hasher {
    /// A fresh hasher at the FNV offset basis.
    pub fn new() -> Hasher {
        Hasher(0xcbf2_9ce4_8422_2325)
    }

    /// Fold raw bytes.
    pub fn bytes(&mut self, b: &[u8]) -> &mut Hasher {
        for &x in b {
            self.0 ^= u64::from(x);
            self.0 = self.0.wrapping_mul(0x1000_0000_01b3);
        }
        self
    }

    /// Fold a u64 (little-endian).
    pub fn u64(&mut self, v: u64) -> &mut Hasher {
        self.bytes(&v.to_le_bytes())
    }

    /// Fold a string.
    pub fn str(&mut self, s: &str) -> &mut Hasher {
        self.bytes(s.as_bytes())
    }

    /// The accumulated digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Whether a metric name is excluded from digests (see module docs).
fn excluded(name: &str) -> bool {
    name.contains("icache")
        || name.contains("superblock")
        || name.contains("wall")
        || name == "epidemic.events_cross_shard"
}

/// Fold the digest-relevant counters of a registry.
fn fold_metrics(h: &mut Hasher, reg: &obs::MetricsRegistry) {
    for (name, value) in reg.counters() {
        if !excluded(name) {
            h.str(name).u64(value);
        }
    }
}

/// Digest everything semantically observable about a finished Sweeper
/// host: machine state, connection outputs, the event timeline, and the
/// full (filtered) metrics export.
pub fn digest_sweeper(s: &Sweeper) -> u64 {
    let mut h = Hasher::new();
    let m = &s.machine;
    h.u64(u64::from(m.cpu.pc));
    for r in m.cpu.regs {
        h.u64(u64::from(r));
    }
    h.u64(m.insns_retired);
    h.u64(m.clock.cycles());
    h.str(&format!("{:?}", m.status()));
    for c in m.net.conns() {
        h.bytes(&c.output);
    }
    for ev in s.timeline.events() {
        h.u64(ev.at_cycles);
        h.str(&format!("{:?}", ev.event));
    }
    h.u64(s.requests_served);
    h.u64(s.attacks_detected);
    h.u64(s.deployed_vsefs() as u64);
    fold_metrics(&mut h, &s.export_metrics());
    h.finish()
}

/// Digest the shard-count-invariant core of a community run: the
/// infection curve plus the parity-checked counters.
pub fn digest_community(o: &CommunityOutcome) -> u64 {
    let mut h = Hasher::new();
    h.u64(o.t0_tick.map_or(u64::MAX, |t| t));
    h.u64(o.infected);
    h.u64(o.ticks);
    for &c in &o.curve {
        h.u64(c);
    }
    fold_metrics(&mut h, &o.metrics());
    h.finish()
}

/// Digest only the *epidemic-core* observables of a community run: the
/// essence (t0, infected, curve, ticks) plus the `epidemic.*` counters.
///
/// This is the cross-model comparator for the PR-5 zero-fault anchor: a
/// distnet-enabled run legitimately carries `distnet.*` counters the
/// legacy-clock run lacks, but its epidemic core must be bit-identical
/// to the legacy run when the wire is perfect.
pub fn digest_community_epidemic(o: &CommunityOutcome) -> u64 {
    let mut h = Hasher::new();
    h.u64(o.t0_tick.map_or(u64::MAX, |t| t));
    h.u64(o.infected);
    h.u64(o.ticks);
    for &c in &o.curve {
        h.u64(c);
    }
    for (name, value) in o.metrics().counters() {
        if name.starts_with("epidemic.") && !excluded(name) {
            h.str(name).u64(value);
        }
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasher_is_order_sensitive_and_deterministic() {
        let a = Hasher::new().u64(1).u64(2).finish();
        let b = Hasher::new().u64(1).u64(2).finish();
        let c = Hasher::new().u64(2).u64(1).finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn exclusions_cover_the_leg_dependent_metrics() {
        assert!(excluded("svm.icache.hits"));
        assert!(excluded("svm.superblock.dispatches"));
        assert!(excluded("epidemic.events_cross_shard"));
        assert!(excluded("epidemic.generate_wall_ms"));
        assert!(!excluded("svm.insns_retired"));
        assert!(!excluded("recovery.restarts"));
    }

    #[test]
    fn metric_digest_ignores_excluded_counters_only() {
        let mut a = obs::MetricsRegistry::new();
        a.inc("x.real", 3);
        a.inc("svm.icache.hits", 100);
        let mut b = obs::MetricsRegistry::new();
        b.inc("x.real", 3);
        b.inc("svm.icache.hits", 999);
        let mut ha = Hasher::new();
        fold_metrics(&mut ha, &a);
        let mut hb = Hasher::new();
        fold_metrics(&mut hb, &b);
        assert_eq!(ha.finish(), hb.finish());
        b.inc("x.real", 1);
        let mut hc = Hasher::new();
        fold_metrics(&mut hc, &b);
        assert_ne!(ha.finish(), hc.finish());
    }
}
