//! Meta crate for the Sweeper (EuroSys 2007) reproduction workspace.
//!
//! Re-exports every member crate so that examples and integration tests can
//! depend on a single package. See `DESIGN.md` at the repository root for the
//! full system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! record of every table and figure.

pub use analysis;
pub use antibody;
pub use apps;
pub use checkpoint;
pub use dbi;
pub use epidemic;
pub use fleet;
pub use obs;
pub use svm;
pub use sweeper;
