#!/bin/sh
# Staged CI gate.
#
# Every stage is named, timed, and logged: output streams to
# target/ci-logs/<stage>.log, the console shows one line per stage, and
# a wall-clock summary table is printed at the end (also on failure, so
# a red run still shows where the time went). A failing stage prints
# the tail of its log instead of swallowing it. Run a single stage with
# `scripts/ci.sh --stage <name>`.
#
# Stages, in order (tier 1 always runs first):
#   tier1        release build + full test suite + rustfmt
#                (scripts/tier1.sh — the per-commit gate)
#   clippy       whole-workspace clippy, warnings denied
#   no-unsafe    grep gate: the workspace stays `unsafe`-free
#                (DESIGN.md §7) — belt-and-braces on top of the
#                workspace-level `unsafe_code = "forbid"` lint
#   chaos-seeds  quarantined-seed replay: every seed in
#                tests/chaos_known_seeds.txt re-runs BEFORE the random
#                smoke, so once-interesting fault mixes stay covered
#   chaos-smoke  200 seeded fault-injection + differential fuzz cases
#                across all four guests, zero violations required
#   sbparity     superblock parity: all guests on every execution tier
#                must stay bit-identical
#   ckptparity   checkpoint parity: the incremental snapshot engine
#                must reconstruct bit-identically to the full-copy
#                oracle on every guest (differential engine lockstep)
#   bench-smoke  `tables benchjson` perf snapshot; numbers are NOT
#                gated (commit refreshed BENCH_*.json deliberately),
#                but the written JSON must carry the schema-v9
#                "superblock" AND "checkpoint" blocks
#   fleet-smoke  `tables fleet` at 1k hosts over a short horizon; the
#                written JSON must carry the "fleet" block with a
#                finite outbreak p99 and shard_invariant=true (the
#                reactor determinism gate, invariant I10)
#   epidemic-smoke  `tables fig9fail` at reduced hosts; the written
#                JSON must carry the "epidemic1m" block with a finite
#                per-host tick rate and soa_parity=true (the SoA/legacy
#                differential gate, invariant I11 — the binary itself
#                asserts parity and K-invariance before writing)
#   recovery-smoke  `tables fleetrecover` at 1k hosts: the same
#                outbreak under Full vs Domain recovery plus a
#                Differential oracle leg; the written JSON must carry
#                the "recovery" block with domain_parity=true, zero
#                I12 violations, and a Domain outbreak p999 strictly
#                below Full's (the binary itself asserts all four
#                gates before writing)
#   fig9dist     distnet sweep smoke (non-failing)
#
# Run from anywhere; works offline — all dependencies are in-tree.
set -eu
cd "$(dirname "$0")/.."

LOGDIR=target/ci-logs
mkdir -p "$LOGDIR"

ONLY=""
case "${1:-}" in
"") ;;
--stage)
    ONLY="${2:?usage: scripts/ci.sh [--stage <name>]}"
    ;;
*)
    echo "usage: scripts/ci.sh [--stage <name>]" >&2
    exit 2
    ;;
esac

SUMMARY=""
RAN=0

print_summary() {
    [ -n "$SUMMARY" ] || return 0
    printf '\n== stage summary\n'
    printf '   %-12s %8s  %s\n' stage wall status
    printf '%b' "$SUMMARY"
}

# run_stage <name> <fn>: time <fn>, logging to $LOGDIR/<name>.log. On
# failure: print the log tail, the summary so far, and exit non-zero.
# Lines the stage writes starting with "WARN" are surfaced on the
# console even when it passes.
run_stage() {
    name="$1"
    fn="$2"
    if [ -n "$ONLY" ] && [ "$name" != "$ONLY" ]; then
        return 0
    fi
    RAN=1
    log="$LOGDIR/$name.log"
    printf '== stage: %s\n' "$name"
    start=$(date +%s)
    if "$fn" >"$log" 2>&1; then
        end=$(date +%s)
        SUMMARY="$SUMMARY$(printf '   %-12s %7ss  ok' "$name" "$((end - start))")\n"
        grep '^WARN' "$log" || true
    else
        end=$(date +%s)
        SUMMARY="$SUMMARY$(printf '   %-12s %7ss  FAIL' "$name" "$((end - start))")\n"
        printf '== stage %s: FAIL — last 40 lines of %s\n' "$name" "$log" >&2
        tail -40 "$log" >&2
        print_summary
        exit 1
    fi
}

stage_tier1() {
    scripts/tier1.sh
}

stage_clippy() {
    cargo clippy --workspace --all-targets -- -D warnings
}

stage_no_unsafe() {
    if grep -rn --include='*.rs' -E 'unsafe[[:space:]]+(\{|fn|impl|trait)|allow\(unsafe_code\)' \
        src crates tests; then
        echo "FAIL: 'unsafe' construct found in workspace sources"
        return 1
    fi
    echo "workspace is unsafe-free"
}

stage_chaos_seeds() {
    cargo run --release -p chaos -- --seed-file tests/chaos_known_seeds.txt
}

stage_chaos_smoke() {
    cargo run --release -p chaos -- --smoke
}

stage_sbparity() {
    cargo run --release -p bench --bin tables -- sbparity
}

stage_ckptparity() {
    cargo run --release -p bench --bin tables -- ckptparity
}

stage_bench_smoke() {
    if cargo run --release -p bench --bin tables -- \
        benchjson --hosts=2000 --out=target/bench_smoke.json; then
        echo "wrote target/bench_smoke.json"
        # Gated: the snapshot must declare the current schema and carry
        # both tier blocks.
        if ! grep -q '"schema": "sweeper-bench-v9"' target/bench_smoke.json; then
            echo "FAIL: bench_smoke.json does not declare schema sweeper-bench-v9"
            return 1
        fi
        if ! grep -q '"superblock"' target/bench_smoke.json; then
            echo "FAIL: no superblock block in bench_smoke.json"
            return 1
        fi
        if ! grep -q '"checkpoint"' target/bench_smoke.json; then
            echo "FAIL: no checkpoint block in bench_smoke.json"
            return 1
        fi
        echo "schema-v9 declared, superblock + checkpoint blocks present"
    else
        echo "WARN: bench smoke failed (not a gate) — see $LOGDIR/bench-smoke.log"
    fi
}

stage_fleet_smoke() {
    # Gated: the reactor itself asserts digest equality at 1 vs 2
    # shards (a mismatch aborts the run), and the written block must
    # carry a finite outbreak p99.
    cargo run --release -p bench --bin tables -- \
        fleet --hosts=1000 --shards=2 --out=target/fleet_smoke.json
    if ! grep -q '"fleet"' target/fleet_smoke.json; then
        echo "FAIL: no fleet block in fleet_smoke.json"
        return 1
    fi
    if ! grep -q '"shard_invariant": true' target/fleet_smoke.json; then
        echo "FAIL: fleet run is not shard-invariant (I10)"
        return 1
    fi
    if grep -q '"p99_ms": null' target/fleet_smoke.json; then
        echo "FAIL: fleet latency window has no samples (p99 null)"
        return 1
    fi
    echo "schema-v9 fleet block present, p99 finite, shard-invariant"
}

stage_epidemic_smoke() {
    # Gated: the fig9fail binary itself asserts the differential parity
    # verdicts (I11 + K-invariance) before writing; the written block
    # must then carry soa_parity=true and a finite per-host tick rate.
    cargo run --release -p bench --bin tables -- \
        fig9fail --hosts=50000 --out=target/epidemic_smoke.json
    if ! grep -q '"epidemic1m"' target/epidemic_smoke.json; then
        echo "FAIL: no epidemic1m block in epidemic_smoke.json"
        return 1
    fi
    if ! grep -q '"soa_parity": true' target/epidemic_smoke.json; then
        echo "FAIL: SoA/legacy engines diverged (I11)"
        return 1
    fi
    if ! grep -q '"k_invariant": true' target/epidemic_smoke.json; then
        echo "FAIL: shard count changed the parity-gate outcome"
        return 1
    fi
    if grep -q '"host_ticks_per_sec": null' target/epidemic_smoke.json; then
        echo "FAIL: epidemic per-host tick rate is not finite"
        return 1
    fi
    echo "schema-v9 epidemic1m block present, rate finite, SoA parity holds"
}

stage_recovery_smoke() {
    # Gated: the fleetrecover binary itself asserts shard invariance,
    # domain parity, zero I12 violations, and Domain p999 < Full p999
    # before writing; re-check the written block so a silent writer
    # regression cannot green-wash the stage.
    cargo run --release -p bench --bin tables -- \
        fleetrecover --hosts=1000 --shards=2 --out=target/recovery_smoke.json
    if ! grep -q '"recovery"' target/recovery_smoke.json; then
        echo "FAIL: no recovery block in recovery_smoke.json"
        return 1
    fi
    if ! grep -q '"domain_parity": true' target/recovery_smoke.json; then
        echo "FAIL: Differential oracle found a Domain/Full divergence"
        return 1
    fi
    if ! grep -q '"i12_violations": 0' target/recovery_smoke.json; then
        echo "FAIL: partial rollback disturbed a benign domain (I12)"
        return 1
    fi
    domain_p999=$(sed -n 's/.*"domain_outbreak".*"p999_ms": \([0-9.]*\).*/\1/p' target/recovery_smoke.json)
    full_p999=$(sed -n 's/.*"full_outbreak".*"p999_ms": \([0-9.]*\).*/\1/p' target/recovery_smoke.json)
    if [ -z "$domain_p999" ] || [ -z "$full_p999" ]; then
        echo "FAIL: recovery block is missing an outbreak p999"
        return 1
    fi
    if ! awk -v d="$domain_p999" -v f="$full_p999" 'BEGIN { exit !(d < f) }'; then
        echo "FAIL: Domain outbreak p999 ($domain_p999 ms) not below Full ($full_p999 ms)"
        return 1
    fi
    echo "schema-v9 recovery block present, I12 clean, parity holds, domain p999 $domain_p999 < full $full_p999 ms"
}

stage_fig9dist() {
    if cargo run --release -p bench --bin tables -- fig9dist --hosts=1000; then
        echo "fig9dist sweep ok"
    else
        echo "WARN: fig9dist smoke failed (not a gate) — see $LOGDIR/fig9dist.log"
    fi
}

run_stage tier1 stage_tier1
run_stage clippy stage_clippy
run_stage no-unsafe stage_no_unsafe
run_stage chaos-seeds stage_chaos_seeds
run_stage chaos-smoke stage_chaos_smoke
run_stage sbparity stage_sbparity
run_stage ckptparity stage_ckptparity
run_stage bench-smoke stage_bench_smoke
run_stage fleet-smoke stage_fleet_smoke
run_stage epidemic-smoke stage_epidemic_smoke
run_stage recovery-smoke stage_recovery_smoke
run_stage fig9dist stage_fig9dist

if [ "$RAN" -eq 0 ]; then
    echo "ci: unknown stage '$ONLY' (see the stage list in scripts/ci.sh)" >&2
    exit 2
fi
print_summary
echo "== ci: OK"
