#!/bin/sh
# Two-tier CI gate.
#
# Tier 1 (scripts/tier1.sh): release build, full test suite, rustfmt.
# Tier 2 (this script, on top):
#   - clippy across the whole workspace with warnings denied;
#   - a grep gate asserting the workspace stays `unsafe`-free
#     (DESIGN.md §7) — belt-and-braces on top of the workspace-level
#     `unsafe_code = "forbid"` lint, catching `#[allow]` overrides;
#   - the chaos smoke gate: 200 seeded fault-injection + differential
#     fuzz cases across all four guests with zero violations, >= 3 fault
#     families demonstrably fired, and each wire family (loss, Byzantine
#     rejections, bundle forgeries) exercising the antibody distribution
#     network at least once (TESTING.md);
#   - the superblock parity gate: `tables sbparity` runs a benign
#     workload on all four guests on every execution tier (interpreter,
#     icache, icache + superblocks) and fails on any divergence;
#   - a non-failing bench smoke: `tables benchjson` (schema v5: tier
#     rows, chaos block with explicit skip markers, fig9dist distnet
#     sweep) plus `tables fig9dist` on small inputs, proving the
#     perf-snapshot path works (its numbers are NOT gated — commit
#     refreshed BENCH_*.json files deliberately, not from CI). The one
#     gated piece of the smoke: a written snapshot must contain the
#     schema-v5 "superblock" block.
#
# Run from anywhere; works offline — all dependencies are in-tree.
set -eu
cd "$(dirname "$0")/.."

echo "== tier2: tier1 first"
scripts/tier1.sh

echo "== tier2: cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier2: no-unsafe grep gate (DESIGN.md §7)"
if grep -rn --include='*.rs' -E 'unsafe[[:space:]]+(\{|fn|impl|trait)|allow\(unsafe_code\)' \
    src crates tests; then
    echo "== tier2: FAIL — 'unsafe' construct found in workspace sources" >&2
    exit 1
fi
echo "   workspace is unsafe-free"

echo "== tier2: chaos smoke (seeded fault-injection + differential gate)"
# Bounded: 200 seeds, all four guests, zero violations required, at
# least three fault families must demonstrably fire, and the wire
# families must each exercise the distribution network (see TESTING.md).
cargo run --release -p chaos -- --smoke

echo "== tier2: superblock parity gate (all guests, all tiers)"
cargo run --release -p bench --bin tables -- sbparity

echo "== tier2: bench smoke (non-failing)"
if cargo run --release -p bench --bin tables -- \
    benchjson --hosts=2000 --out=target/bench_smoke.json >/dev/null 2>&1; then
    echo "   wrote target/bench_smoke.json"
    # Gated: the schema-v5 superblock tier rows must be present.
    if ! grep -q '"superblock"' target/bench_smoke.json; then
        echo "== tier2: FAIL — no superblock block in bench_smoke.json" >&2
        exit 1
    fi
    echo "   schema-v5 superblock block present"
else
    echo "   WARN: bench smoke failed (not a gate)"
fi
if cargo run --release -p bench --bin tables -- \
    fig9dist --hosts=1000 >/dev/null 2>&1; then
    echo "   fig9dist sweep ok"
else
    echo "   WARN: fig9dist smoke failed (not a gate)"
fi

echo "== tier2: OK"
