#!/bin/sh
# Tier-1 gate: what must stay green on every commit.
#
# Build the workspace in release, run the root-package test suite
# (library + integration tests + doctests), and enforce formatting.
# Run from anywhere; works offline — all dependencies are in-tree.
set -eu
cd "$(dirname "$0")/.."

echo "== tier1: cargo build --release"
cargo build --release

echo "== tier1: cargo test -q"
cargo test -q

echo "== tier1: cargo fmt --check"
cargo fmt --check

echo "== tier1: OK"
